// Serve-layer tests: the request protocol (JSON parsing, spec
// validation, fingerprints), the bounded-admission scheduler, the LRU
// result cache, the service's cache/dedup behaviour, and the TCP
// server end to end — including the serving contract that a served
// payload is byte-identical to the CLI renderer's output and carries
// the same digest as a direct engine run.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/render_json.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/service.h"
#include "sim/experiment.h"
#include "sim/scenario_registry.h"

namespace {

using eqimpact::serve::Admission;
using eqimpact::serve::CachedResult;
using eqimpact::serve::Client;
using eqimpact::serve::ClientEvent;
using eqimpact::serve::ErrorCode;
using eqimpact::serve::ExperimentService;
using eqimpact::serve::JobSpec;
using eqimpact::serve::JsonValue;
using eqimpact::serve::ParseJson;
using eqimpact::serve::ResultCache;
using eqimpact::serve::Scheduler;
using eqimpact::serve::SchedulerOptions;
using eqimpact::serve::Server;
using eqimpact::serve::ServerOptions;
using eqimpact::serve::ServiceOptions;

// --- JSON -------------------------------------------------------------

TEST(ServeJson, ParsesObjectsArraysAndScalars) {
  JsonValue value;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"a": 1.5, "b": [true, null, "x\n"], "c": {"d": -2e3}})", &value,
      &error))
      << error;
  ASSERT_TRUE(value.is_object());
  EXPECT_DOUBLE_EQ(value.Find("a")->as_number(), 1.5);
  const JsonValue* b = value.Find("b");
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_TRUE(b->items()[0].as_bool());
  EXPECT_TRUE(b->items()[1].is_null());
  EXPECT_EQ(b->items()[2].as_string(), "x\n");
  EXPECT_DOUBLE_EQ(value.Find("c")->Find("d")->as_number(), -2000.0);
}

TEST(ServeJson, RejectsMalformedInput) {
  JsonValue value;
  std::string error;
  const char* bad[] = {"",       "{",           "{\"a\": }", "[1,]",
                       "01",     "\"unclosed",  "{} extra",  "nan",
                       "+1",     "{'a': 1}",    "[1 2]",     "\"\\q\""};
  for (const char* text : bad) {
    EXPECT_FALSE(ParseJson(text, &value, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(ServeJson, DumpRoundTrips) {
  JsonValue object = JsonValue::Object();
  object.Set("name", JsonValue::String("a\"b\\c"));
  object.Set("count", JsonValue::Number(3));
  JsonValue array = JsonValue::Array();
  array.Append(JsonValue::Number(0.1));
  array.Append(JsonValue::Bool(false));
  object.Set("items", array);
  JsonValue reparsed;
  std::string error;
  ASSERT_TRUE(ParseJson(object.Dump(), &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.Find("name")->as_string(), "a\"b\\c");
  EXPECT_DOUBLE_EQ(reparsed.Find("count")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(reparsed.Find("items")->items()[0].as_number(), 0.1);
}

TEST(ServeJson, BoundsNestingDepth) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson(deep, &value, &error));
}

// --- Protocol ---------------------------------------------------------

JobSpec ParseSpecOrDie(const std::string& text) {
  JsonValue request;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &request, &error)) << error;
  JobSpec spec;
  ErrorCode code;
  EXPECT_TRUE(eqimpact::serve::ParseJobSpec(request, &spec, &code, &error))
      << error;
  return spec;
}

TEST(ServeProtocol, ParsesFullSpec) {
  const JobSpec spec = ParseSpecOrDie(
      R"({"id": "j1", "scenario": "credit", "trials": 3, "seed": 7,
          "bins": 32, "threads": 2, "set": {"num_users": 500},
          "sweep": {"cutoff": [0.4, 0.6]}})");
  EXPECT_EQ(spec.id, "j1");
  EXPECT_EQ(spec.scenario, "credit");
  EXPECT_EQ(spec.num_trials, 3u);
  EXPECT_EQ(spec.master_seed, 7u);
  EXPECT_EQ(spec.impact_bins, 32u);
  EXPECT_EQ(spec.num_threads, 2u);
  ASSERT_EQ(spec.assignments.size(), 1u);
  EXPECT_EQ(spec.assignments[0].first, "num_users");
  EXPECT_DOUBLE_EQ(spec.assignments[0].second, 500.0);
  ASSERT_TRUE(spec.is_sweep());
  ASSERT_EQ(spec.sweeps.size(), 1u);
  EXPECT_EQ(spec.sweeps[0].name, "cutoff");
  EXPECT_EQ(spec.sweeps[0].values.size(), 2u);
}

TEST(ServeProtocol, DefaultsMatchTheCli) {
  const JobSpec spec = ParseSpecOrDie(R"({"scenario": "credit"})");
  EXPECT_EQ(spec.num_trials, 5u);
  EXPECT_EQ(spec.master_seed, 42u);
  EXPECT_EQ(spec.impact_bins, 64u);
  EXPECT_EQ(spec.num_threads, 0u);
  EXPECT_EQ(spec.point_threads, 1u);
  EXPECT_FALSE(spec.is_sweep());
}

TEST(ServeProtocol, RejectsMalformedSpecs) {
  const struct {
    const char* text;
    ErrorCode expected;
  } cases[] = {
      {R"([1, 2])", ErrorCode::kBadRequest},
      {R"({"trials": 3})", ErrorCode::kBadRequest},  // no scenario
      {R"({"scenario": "credit", "trials": 0})", ErrorCode::kBadRequest},
      {R"({"scenario": "credit", "trials": -1})", ErrorCode::kBadRequest},
      {R"({"scenario": "credit", "trials": 2.5})", ErrorCode::kBadRequest},
      {R"({"scenario": "credit", "mystery": 1})", ErrorCode::kBadRequest},
      {R"({"scenario": "credit", "set": [1]})", ErrorCode::kBadRequest},
      {R"({"scenario": "credit", "sweep": {"x": []}})",
       ErrorCode::kBadRequest},
      {R"({"scenario": "credit", "sweep": {"x": [1, "y"]}})",
       ErrorCode::kBadRequest},
  };
  for (const auto& test_case : cases) {
    JsonValue request;
    std::string error;
    ASSERT_TRUE(ParseJson(test_case.text, &request, &error)) << error;
    JobSpec spec;
    ErrorCode code;
    EXPECT_FALSE(
        eqimpact::serve::ParseJobSpec(request, &spec, &code, &error))
        << test_case.text;
    EXPECT_EQ(code, test_case.expected) << test_case.text;
  }
}

TEST(ServeProtocol, FingerprintSeparatesSpecs) {
  const JobSpec base = ParseSpecOrDie(R"({"scenario": "credit"})");
  const JobSpec other_seed =
      ParseSpecOrDie(R"({"scenario": "credit", "seed": 43})");
  const JobSpec other_scenario = ParseSpecOrDie(R"({"scenario": "market"})");
  const JobSpec with_set = ParseSpecOrDie(
      R"({"scenario": "credit", "set": {"num_users": 100}})");
  const uint64_t base_print = eqimpact::serve::JobSpecFingerprint(base);
  EXPECT_NE(base_print, eqimpact::serve::JobSpecFingerprint(other_seed));
  EXPECT_NE(base_print,
            eqimpact::serve::JobSpecFingerprint(other_scenario));
  EXPECT_NE(base_print, eqimpact::serve::JobSpecFingerprint(with_set));
  // The client id never reaches the payload, so it never reaches the key.
  JobSpec with_id = base;
  with_id.id = "client-7";
  EXPECT_EQ(base_print, eqimpact::serve::JobSpecFingerprint(with_id));
}

// --- Scheduler --------------------------------------------------------

TEST(ServeScheduler, RejectsWhenQueueIsFull) {
  SchedulerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.total_threads = 1;
  Scheduler scheduler(options);

  std::mutex mutex;
  std::condition_variable started_cv;
  std::condition_variable release_cv;
  bool started = false;
  bool release = false;
  auto blocker = [&](size_t) {
    std::unique_lock<std::mutex> lock(mutex);
    started = true;
    started_cv.notify_all();
    release_cv.wait(lock, [&] { return release; });
  };
  ASSERT_EQ(scheduler.Submit(blocker), Admission::kAccepted);
  {
    // The first job occupies the only worker before we fill the queue,
    // so the admission arithmetic below is deterministic.
    std::unique_lock<std::mutex> lock(mutex);
    started_cv.wait(lock, [&] { return started; });
  }
  EXPECT_EQ(scheduler.Submit([](size_t) {}), Admission::kAccepted);
  EXPECT_EQ(scheduler.queue_depth(), 1u);
  // Executing + queued == num_workers + queue_capacity: full.
  EXPECT_EQ(scheduler.Submit([](size_t) {}), Admission::kQueueFull);
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  release_cv.notify_all();
  scheduler.Drain();
  EXPECT_EQ(scheduler.in_flight(), 0u);
}

TEST(ServeScheduler, ShutdownRejectsAndDrains) {
  SchedulerOptions options;
  options.num_workers = 2;
  options.total_threads = 1;
  Scheduler scheduler(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(scheduler.Submit([&ran](size_t) { ++ran; }),
              Admission::kAccepted);
  }
  scheduler.Shutdown();
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(scheduler.Submit([](size_t) {}), Admission::kShuttingDown);
}

TEST(ServeScheduler, SwallowsJobExceptions) {
  SchedulerOptions options;
  options.num_workers = 1;
  options.total_threads = 1;
  Scheduler scheduler(options);
  ASSERT_EQ(scheduler.Submit([](size_t) { throw std::runtime_error("x"); }),
            Admission::kAccepted);
  scheduler.Drain();
  EXPECT_EQ(scheduler.failed_jobs(), 1u);
  // The worker survives the throw.
  std::atomic<bool> ran{false};
  ASSERT_EQ(scheduler.Submit([&ran](size_t) { ran = true; }),
            Admission::kAccepted);
  scheduler.Drain();
  EXPECT_TRUE(ran.load());
}

TEST(ServeScheduler, SplitsTheThreadBudgetAcrossWorkers) {
  SchedulerOptions options;
  options.num_workers = 2;
  options.total_threads = 8;
  Scheduler scheduler(options);
  EXPECT_EQ(scheduler.job_threads(), 4u);
}

// --- Result cache -----------------------------------------------------

TEST(ServeResultCache, HitsReturnTheInsertedPayload) {
  ResultCache cache(4);
  CachedResult result;
  EXPECT_FALSE(cache.Lookup(1, &result));
  cache.Insert(1, {0xabcdu, "payload-1"});
  ASSERT_TRUE(cache.Lookup(1, &result));
  EXPECT_EQ(result.digest, 0xabcdu);
  EXPECT_EQ(result.payload, "payload-1");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ServeResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.Insert(1, {1, "one"});
  cache.Insert(2, {2, "two"});
  CachedResult result;
  ASSERT_TRUE(cache.Lookup(1, &result));  // 1 is now most recent.
  cache.Insert(3, {3, "three"});          // Evicts 2.
  EXPECT_TRUE(cache.Lookup(1, &result));
  EXPECT_FALSE(cache.Lookup(2, &result));
  EXPECT_TRUE(cache.Lookup(3, &result));
}

// --- Service ----------------------------------------------------------

/// Collects one submission's event stream (sinks may fire from worker
/// threads; the service serializes per-submission calls).
struct EventLog {
  std::mutex mutex;
  std::condition_variable done_cv;
  std::vector<ClientEvent> events;
  bool done = false;

  ExperimentService::EventSink Sink() {
    return [this](const std::string& line) {
      ClientEvent event;
      std::string error;
      ASSERT_TRUE(eqimpact::serve::ParseEventLine(line, &event, &error))
          << error << ": " << line;
      std::lock_guard<std::mutex> lock(mutex);
      events.push_back(event);
      if (event.event == "result" || event.event == "error") {
        done = true;
        done_cv.notify_all();
      }
    };
  }

  void WaitDone() {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [this] { return done; });
  }

  const ClientEvent& last() {
    std::lock_guard<std::mutex> lock(mutex);
    return events.back();
  }
};

ServiceOptions SmallService() {
  ServiceOptions options;
  options.scheduler.num_workers = 2;
  options.scheduler.queue_capacity = 4;
  options.scheduler.total_threads = 1;
  options.cache_capacity = 8;
  return options;
}

const char kSmallCreditJob[] =
    R"({"scenario": "credit", "trials": 2, "set": {"num_users": 150}})";

TEST(ServeService, StreamsAcceptedProgressResult) {
  ExperimentService service(SmallService());
  EventLog log;
  ASSERT_TRUE(service.Submit(kSmallCreditJob, log.Sink()));
  log.WaitDone();
  ASSERT_EQ(log.events.size(), 4u);  // accepted, 2x progress, result.
  EXPECT_EQ(log.events[0].event, "accepted");
  EXPECT_FALSE(log.events[0].cached);
  EXPECT_EQ(log.events[1].event, "progress");
  EXPECT_EQ(log.events[1].unit, "trial");
  EXPECT_EQ(log.events[2].completed, 2u);
  EXPECT_EQ(log.events[3].event, "result");
  EXPECT_NE(log.events[3].digest, 0u);
  EXPECT_FALSE(log.events[3].payload.empty());
}

TEST(ServeService, ServedDigestMatchesDirectEngineRun) {
  ExperimentService service(SmallService());
  EventLog log;
  ASSERT_TRUE(service.Submit(kSmallCreditJob, log.Sink()));
  log.WaitDone();

  std::unique_ptr<eqimpact::sim::Scenario> scenario =
      eqimpact::sim::CreateScenario("credit");
  ASSERT_TRUE(scenario->SetParameter("num_users", 150));
  eqimpact::sim::ExperimentOptions options;
  options.num_trials = 2;
  options.num_threads = 1;
  eqimpact::sim::ExperimentResult direct =
      eqimpact::sim::RunExperiment(scenario.get(), options);
  EXPECT_EQ(log.last().digest, eqimpact::sim::ExperimentDigest(direct));
}

TEST(ServeService, CacheHitIsBitwiseIdentical) {
  ExperimentService service(SmallService());
  EventLog first;
  ASSERT_TRUE(service.Submit(kSmallCreditJob, first.Sink()));
  first.WaitDone();
  EventLog second;
  ASSERT_TRUE(service.Submit(kSmallCreditJob, second.Sink()));
  second.WaitDone();
  // The repeat is answered from cache: no second engine run, and the
  // payload/digest are byte-for-byte the first run's.
  EXPECT_EQ(service.runs_started(), 1u);
  EXPECT_GE(service.cache_hits(), 1u);
  ASSERT_EQ(second.events.size(), 2u);  // accepted + result, no progress.
  EXPECT_TRUE(second.events[0].cached);
  EXPECT_TRUE(second.events[1].cached);
  EXPECT_EQ(second.last().payload, first.last().payload);
  EXPECT_EQ(second.last().digest, first.last().digest);
}

TEST(ServeService, ConcurrentIdenticalSubmissionsDedupToOneRun) {
  // One worker: the first submission occupies it, the identical
  // follow-ups must join it rather than queue their own runs.
  ServiceOptions options = SmallService();
  options.scheduler.num_workers = 1;
  ExperimentService service(options);
  const char job[] =
      R"({"scenario": "credit", "trials": 3, "set": {"num_users": 40000}})";
  EventLog logs[3];
  for (auto& log : logs) {
    ASSERT_TRUE(service.Submit(job, log.Sink()));
  }
  for (auto& log : logs) log.WaitDone();
  EXPECT_EQ(service.runs_started(), 1u);
  EXPECT_EQ(service.dedup_joins(), 2u);
  for (auto& log : logs) {
    EXPECT_EQ(log.last().event, "result");
    EXPECT_EQ(log.last().payload, logs[0].last().payload);
  }
  // Every subscriber's stream is tagged with its own id.
  EXPECT_NE(logs[0].last().id, logs[1].last().id);
}

TEST(ServeService, TypedErrorsDoNotReachTheScheduler) {
  ExperimentService service(SmallService());
  const struct {
    const char* request;
    const char* code;
  } cases[] = {
      {"{oops", "bad_json"},
      {R"({"scenario": "credit", "trials": "three"})", "bad_request"},
      {R"({"scenario": "galaxy"})", "unknown_scenario"},
      {R"({"scenario": "credit", "set": {"num_users": -5}})",
       "bad_parameter"},
      {R"({"scenario": "credit", "sweep": {"warp": [1]}})",
       "bad_parameter"},
  };
  for (const auto& test_case : cases) {
    EventLog log;
    EXPECT_FALSE(service.Submit(test_case.request, log.Sink()))
        << test_case.request;
    ASSERT_EQ(log.events.size(), 1u) << test_case.request;
    EXPECT_EQ(log.events[0].event, "error");
    EXPECT_EQ(log.events[0].code, test_case.code) << test_case.request;
  }
  EXPECT_EQ(service.runs_started(), 0u);
  // The service keeps serving after every rejection.
  EventLog log;
  ASSERT_TRUE(service.Submit(kSmallCreditJob, log.Sink()));
  log.WaitDone();
  EXPECT_EQ(log.last().event, "result");
}

TEST(ServeService, ShutdownRejectsNewJobsWithTypedError) {
  ExperimentService service(SmallService());
  service.Shutdown();
  EventLog log;
  EXPECT_FALSE(service.Submit(kSmallCreditJob, log.Sink()));
  ASSERT_EQ(log.events.size(), 1u);
  EXPECT_EQ(log.events[0].code, "shutting_down");
}

// --- TCP server -------------------------------------------------------

TEST(ServeServer, ServesOverLoopbackByteIdenticallyToTheRenderer) {
  ServerOptions options;
  options.service = SmallService();
  Server server(options);
  ASSERT_TRUE(server.Start());
  ASSERT_GT(server.port(), 0);

  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect(server.port(), &error)) << error;
  ClientEvent last;
  ASSERT_TRUE(client.SubmitAndWait(kSmallCreditJob, &last, &error)) << error;

  // The served payload equals the shared renderer's output for the
  // same spec — the serving path adds no bytes and loses none.
  std::unique_ptr<eqimpact::sim::Scenario> scenario =
      eqimpact::sim::CreateScenario("credit");
  ASSERT_TRUE(scenario->SetParameter("num_users", 150));
  eqimpact::sim::ExperimentOptions experiment;
  experiment.num_trials = 2;
  experiment.num_threads = 1;
  eqimpact::sim::ExperimentResult direct =
      eqimpact::sim::RunExperiment(scenario.get(), experiment);
  eqimpact::serve::RenderHeader header;
  header.num_trials = 2;
  header.provenance_json = eqimpact::serve::RenderProvenance(
      false, 0, "", false, "\"served\": true");
  EXPECT_EQ(last.payload,
            eqimpact::serve::RenderExperimentJson(direct, header));
  EXPECT_EQ(last.digest, eqimpact::sim::ExperimentDigest(direct));

  // A malformed line gets a typed error and leaves the connection and
  // the server alive for the next request.
  ASSERT_TRUE(client.Send("this is not json"));
  ClientEvent event;
  ASSERT_TRUE(client.ReadEvent(&event, &error)) << error;
  EXPECT_EQ(event.event, "error");
  EXPECT_EQ(event.code, "bad_json");
  ASSERT_TRUE(client.SubmitAndWait(kSmallCreditJob, &last, &error)) << error;
  EXPECT_TRUE(last.cached);

  server.Shutdown();
}

TEST(ServeServer, ShutdownDrainsInFlightJobs) {
  ServerOptions options;
  options.service = SmallService();
  Server server(options);
  ASSERT_TRUE(server.Start());

  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect(server.port(), &error)) << error;
  ASSERT_TRUE(client.Send(
      R"({"scenario": "credit", "trials": 2, "set": {"num_users": 60000}})"));
  ClientEvent event;
  ASSERT_TRUE(client.ReadEvent(&event, &error)) << error;
  ASSERT_EQ(event.event, "accepted");

  // Shut down while the job runs: the drain must still deliver its
  // result before the socket closes.
  std::thread shutdown_thread([&server] { server.Shutdown(); });
  bool saw_result = false;
  while (client.ReadEvent(&event, &error)) {
    if (event.event == "result") {
      saw_result = true;
      break;
    }
  }
  shutdown_thread.join();
  EXPECT_TRUE(saw_result);
  EXPECT_EQ(server.service().runs_started(), 1u);
}

}  // namespace
