// Serve-layer tests: the request protocol (JSON parsing, spec
// validation, fingerprints), the bounded-admission scheduler, the LRU
// result cache, the service's cache/dedup behaviour, and the TCP
// server end to end — including the serving contract that a served
// payload is byte-identical to the CLI renderer's output and carries
// the same digest as a direct engine run.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/event_loop.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/render_json.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/service.h"
#include "sim/experiment.h"
#include "sim/scenario_registry.h"

namespace {

using eqimpact::serve::Admission;
using eqimpact::serve::CachedResult;
using eqimpact::serve::Client;
using eqimpact::serve::ClientEvent;
using eqimpact::serve::ErrorCode;
using eqimpact::serve::ExperimentService;
using eqimpact::serve::JobSpec;
using eqimpact::serve::JsonValue;
using eqimpact::serve::ParseJson;
using eqimpact::serve::LineFramer;
using eqimpact::serve::ResultCache;
using eqimpact::serve::Scheduler;
using eqimpact::serve::SchedulerOptions;
using eqimpact::serve::Server;
using eqimpact::serve::ServerOptions;
using eqimpact::serve::ServerTransport;
using eqimpact::serve::ServiceOptions;
using eqimpact::serve::TransportStats;

// --- JSON -------------------------------------------------------------

TEST(ServeJson, ParsesObjectsArraysAndScalars) {
  JsonValue value;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"a": 1.5, "b": [true, null, "x\n"], "c": {"d": -2e3}})", &value,
      &error))
      << error;
  ASSERT_TRUE(value.is_object());
  EXPECT_DOUBLE_EQ(value.Find("a")->as_number(), 1.5);
  const JsonValue* b = value.Find("b");
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_TRUE(b->items()[0].as_bool());
  EXPECT_TRUE(b->items()[1].is_null());
  EXPECT_EQ(b->items()[2].as_string(), "x\n");
  EXPECT_DOUBLE_EQ(value.Find("c")->Find("d")->as_number(), -2000.0);
}

TEST(ServeJson, RejectsMalformedInput) {
  JsonValue value;
  std::string error;
  const char* bad[] = {"",       "{",           "{\"a\": }", "[1,]",
                       "01",     "\"unclosed",  "{} extra",  "nan",
                       "+1",     "{'a': 1}",    "[1 2]",     "\"\\q\""};
  for (const char* text : bad) {
    EXPECT_FALSE(ParseJson(text, &value, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(ServeJson, DumpRoundTrips) {
  JsonValue object = JsonValue::Object();
  object.Set("name", JsonValue::String("a\"b\\c"));
  object.Set("count", JsonValue::Number(3));
  JsonValue array = JsonValue::Array();
  array.Append(JsonValue::Number(0.1));
  array.Append(JsonValue::Bool(false));
  object.Set("items", array);
  JsonValue reparsed;
  std::string error;
  ASSERT_TRUE(ParseJson(object.Dump(), &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.Find("name")->as_string(), "a\"b\\c");
  EXPECT_DOUBLE_EQ(reparsed.Find("count")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(reparsed.Find("items")->items()[0].as_number(), 0.1);
}

TEST(ServeJson, BoundsNestingDepth) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson(deep, &value, &error));
}

// --- Protocol ---------------------------------------------------------

JobSpec ParseSpecOrDie(const std::string& text) {
  JsonValue request;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &request, &error)) << error;
  JobSpec spec;
  ErrorCode code;
  EXPECT_TRUE(eqimpact::serve::ParseJobSpec(request, &spec, &code, &error))
      << error;
  return spec;
}

TEST(ServeProtocol, ParsesFullSpec) {
  const JobSpec spec = ParseSpecOrDie(
      R"({"id": "j1", "scenario": "credit", "trials": 3, "seed": 7,
          "bins": 32, "threads": 2, "set": {"num_users": 500},
          "sweep": {"cutoff": [0.4, 0.6]}})");
  EXPECT_EQ(spec.id, "j1");
  EXPECT_EQ(spec.scenario, "credit");
  EXPECT_EQ(spec.num_trials, 3u);
  EXPECT_EQ(spec.master_seed, 7u);
  EXPECT_EQ(spec.impact_bins, 32u);
  EXPECT_EQ(spec.num_threads, 2u);
  ASSERT_EQ(spec.assignments.size(), 1u);
  EXPECT_EQ(spec.assignments[0].first, "num_users");
  EXPECT_DOUBLE_EQ(spec.assignments[0].second, 500.0);
  ASSERT_TRUE(spec.is_sweep());
  ASSERT_EQ(spec.sweeps.size(), 1u);
  EXPECT_EQ(spec.sweeps[0].name, "cutoff");
  EXPECT_EQ(spec.sweeps[0].values.size(), 2u);
}

TEST(ServeProtocol, DefaultsMatchTheCli) {
  const JobSpec spec = ParseSpecOrDie(R"({"scenario": "credit"})");
  EXPECT_EQ(spec.num_trials, 5u);
  EXPECT_EQ(spec.master_seed, 42u);
  EXPECT_EQ(spec.impact_bins, 64u);
  EXPECT_EQ(spec.num_threads, 0u);
  EXPECT_EQ(spec.point_threads, 1u);
  EXPECT_FALSE(spec.is_sweep());
}

TEST(ServeProtocol, RejectsMalformedSpecs) {
  const struct {
    const char* text;
    ErrorCode expected;
  } cases[] = {
      {R"([1, 2])", ErrorCode::kBadRequest},
      {R"({"trials": 3})", ErrorCode::kBadRequest},  // no scenario
      {R"({"scenario": "credit", "trials": 0})", ErrorCode::kBadRequest},
      {R"({"scenario": "credit", "trials": -1})", ErrorCode::kBadRequest},
      {R"({"scenario": "credit", "trials": 2.5})", ErrorCode::kBadRequest},
      {R"({"scenario": "credit", "mystery": 1})", ErrorCode::kBadRequest},
      {R"({"scenario": "credit", "set": [1]})", ErrorCode::kBadRequest},
      {R"({"scenario": "credit", "sweep": {"x": []}})",
       ErrorCode::kBadRequest},
      {R"({"scenario": "credit", "sweep": {"x": [1, "y"]}})",
       ErrorCode::kBadRequest},
  };
  for (const auto& test_case : cases) {
    JsonValue request;
    std::string error;
    ASSERT_TRUE(ParseJson(test_case.text, &request, &error)) << error;
    JobSpec spec;
    ErrorCode code;
    EXPECT_FALSE(
        eqimpact::serve::ParseJobSpec(request, &spec, &code, &error))
        << test_case.text;
    EXPECT_EQ(code, test_case.expected) << test_case.text;
  }
}

TEST(ServeProtocol, FingerprintSeparatesSpecs) {
  const JobSpec base = ParseSpecOrDie(R"({"scenario": "credit"})");
  const JobSpec other_seed =
      ParseSpecOrDie(R"({"scenario": "credit", "seed": 43})");
  const JobSpec other_scenario = ParseSpecOrDie(R"({"scenario": "market"})");
  const JobSpec with_set = ParseSpecOrDie(
      R"({"scenario": "credit", "set": {"num_users": 100}})");
  const uint64_t base_print = eqimpact::serve::JobSpecFingerprint(base);
  EXPECT_NE(base_print, eqimpact::serve::JobSpecFingerprint(other_seed));
  EXPECT_NE(base_print,
            eqimpact::serve::JobSpecFingerprint(other_scenario));
  EXPECT_NE(base_print, eqimpact::serve::JobSpecFingerprint(with_set));
  // The client id never reaches the payload, so it never reaches the key.
  JobSpec with_id = base;
  with_id.id = "client-7";
  EXPECT_EQ(base_print, eqimpact::serve::JobSpecFingerprint(with_id));
}

// --- Scheduler --------------------------------------------------------

TEST(ServeScheduler, RejectsWhenQueueIsFull) {
  SchedulerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.total_threads = 1;
  Scheduler scheduler(options);

  std::mutex mutex;
  std::condition_variable started_cv;
  std::condition_variable release_cv;
  bool started = false;
  bool release = false;
  auto blocker = [&](size_t) {
    std::unique_lock<std::mutex> lock(mutex);
    started = true;
    started_cv.notify_all();
    release_cv.wait(lock, [&] { return release; });
  };
  ASSERT_EQ(scheduler.Submit(blocker), Admission::kAccepted);
  {
    // The first job occupies the only worker before we fill the queue,
    // so the admission arithmetic below is deterministic.
    std::unique_lock<std::mutex> lock(mutex);
    started_cv.wait(lock, [&] { return started; });
  }
  EXPECT_EQ(scheduler.Submit([](size_t) {}), Admission::kAccepted);
  EXPECT_EQ(scheduler.queue_depth(), 1u);
  // Executing + queued == num_workers + queue_capacity: full.
  EXPECT_EQ(scheduler.Submit([](size_t) {}), Admission::kQueueFull);
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  release_cv.notify_all();
  scheduler.Drain();
  EXPECT_EQ(scheduler.in_flight(), 0u);
}

TEST(ServeScheduler, ShutdownRejectsAndDrains) {
  SchedulerOptions options;
  options.num_workers = 2;
  options.total_threads = 1;
  Scheduler scheduler(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(scheduler.Submit([&ran](size_t) { ++ran; }),
              Admission::kAccepted);
  }
  scheduler.Shutdown();
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(scheduler.Submit([](size_t) {}), Admission::kShuttingDown);
}

TEST(ServeScheduler, SwallowsJobExceptions) {
  SchedulerOptions options;
  options.num_workers = 1;
  options.total_threads = 1;
  Scheduler scheduler(options);
  ASSERT_EQ(scheduler.Submit([](size_t) { throw std::runtime_error("x"); }),
            Admission::kAccepted);
  scheduler.Drain();
  EXPECT_EQ(scheduler.failed_jobs(), 1u);
  // The worker survives the throw.
  std::atomic<bool> ran{false};
  ASSERT_EQ(scheduler.Submit([&ran](size_t) { ran = true; }),
            Admission::kAccepted);
  scheduler.Drain();
  EXPECT_TRUE(ran.load());
}

TEST(ServeScheduler, SplitsTheThreadBudgetAcrossWorkers) {
  SchedulerOptions options;
  options.num_workers = 2;
  options.total_threads = 8;
  Scheduler scheduler(options);
  EXPECT_EQ(scheduler.job_threads(), 4u);
}

// --- Result cache -----------------------------------------------------

TEST(ServeResultCache, HitsReturnTheInsertedPayload) {
  ResultCache cache(4);
  CachedResult result;
  EXPECT_FALSE(cache.Lookup(1, &result));
  cache.Insert(1, {0xabcdu, "payload-1"});
  ASSERT_TRUE(cache.Lookup(1, &result));
  EXPECT_EQ(result.digest, 0xabcdu);
  EXPECT_EQ(result.payload, "payload-1");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ServeResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.Insert(1, {1, "one"});
  cache.Insert(2, {2, "two"});
  CachedResult result;
  ASSERT_TRUE(cache.Lookup(1, &result));  // 1 is now most recent.
  cache.Insert(3, {3, "three"});          // Evicts 2.
  EXPECT_TRUE(cache.Lookup(1, &result));
  EXPECT_FALSE(cache.Lookup(2, &result));
  EXPECT_TRUE(cache.Lookup(3, &result));
}

// --- Service ----------------------------------------------------------

/// Collects one submission's event stream (sinks may fire from worker
/// threads; the service serializes per-submission calls).
struct EventLog {
  std::mutex mutex;
  std::condition_variable done_cv;
  std::vector<ClientEvent> events;
  bool done = false;

  ExperimentService::EventSink Sink() {
    return [this](const std::string& line) {
      ClientEvent event;
      std::string error;
      ASSERT_TRUE(eqimpact::serve::ParseEventLine(line, &event, &error))
          << error << ": " << line;
      std::lock_guard<std::mutex> lock(mutex);
      events.push_back(event);
      if (event.event == "result" || event.event == "error") {
        done = true;
        done_cv.notify_all();
      }
    };
  }

  void WaitDone() {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [this] { return done; });
  }

  const ClientEvent& last() {
    std::lock_guard<std::mutex> lock(mutex);
    return events.back();
  }
};

ServiceOptions SmallService() {
  ServiceOptions options;
  options.scheduler.num_workers = 2;
  options.scheduler.queue_capacity = 4;
  options.scheduler.total_threads = 1;
  options.cache_capacity = 8;
  return options;
}

const char kSmallCreditJob[] =
    R"({"scenario": "credit", "trials": 2, "set": {"num_users": 150}})";

TEST(ServeService, StreamsAcceptedProgressResult) {
  ExperimentService service(SmallService());
  EventLog log;
  ASSERT_TRUE(service.Submit(kSmallCreditJob, log.Sink()));
  log.WaitDone();
  ASSERT_EQ(log.events.size(), 4u);  // accepted, 2x progress, result.
  EXPECT_EQ(log.events[0].event, "accepted");
  EXPECT_FALSE(log.events[0].cached);
  EXPECT_EQ(log.events[1].event, "progress");
  EXPECT_EQ(log.events[1].unit, "trial");
  EXPECT_EQ(log.events[2].completed, 2u);
  EXPECT_EQ(log.events[3].event, "result");
  EXPECT_NE(log.events[3].digest, 0u);
  EXPECT_FALSE(log.events[3].payload.empty());
}

TEST(ServeService, ServedDigestMatchesDirectEngineRun) {
  ExperimentService service(SmallService());
  EventLog log;
  ASSERT_TRUE(service.Submit(kSmallCreditJob, log.Sink()));
  log.WaitDone();

  std::unique_ptr<eqimpact::sim::Scenario> scenario =
      eqimpact::sim::CreateScenario("credit");
  ASSERT_TRUE(scenario->SetParameter("num_users", 150));
  eqimpact::sim::ExperimentOptions options;
  options.num_trials = 2;
  options.num_threads = 1;
  eqimpact::sim::ExperimentResult direct =
      eqimpact::sim::RunExperiment(scenario.get(), options);
  EXPECT_EQ(log.last().digest, eqimpact::sim::ExperimentDigest(direct));
}

TEST(ServeService, CacheHitIsBitwiseIdentical) {
  ExperimentService service(SmallService());
  EventLog first;
  ASSERT_TRUE(service.Submit(kSmallCreditJob, first.Sink()));
  first.WaitDone();
  EventLog second;
  ASSERT_TRUE(service.Submit(kSmallCreditJob, second.Sink()));
  second.WaitDone();
  // The repeat is answered from cache: no second engine run, and the
  // payload/digest are byte-for-byte the first run's.
  EXPECT_EQ(service.runs_started(), 1u);
  EXPECT_GE(service.cache_hits(), 1u);
  ASSERT_EQ(second.events.size(), 2u);  // accepted + result, no progress.
  EXPECT_TRUE(second.events[0].cached);
  EXPECT_TRUE(second.events[1].cached);
  EXPECT_EQ(second.last().payload, first.last().payload);
  EXPECT_EQ(second.last().digest, first.last().digest);
}

TEST(ServeService, ConcurrentIdenticalSubmissionsDedupToOneRun) {
  // One worker: the first submission occupies it, the identical
  // follow-ups must join it rather than queue their own runs.
  ServiceOptions options = SmallService();
  options.scheduler.num_workers = 1;
  ExperimentService service(options);
  const char job[] =
      R"({"scenario": "credit", "trials": 3, "set": {"num_users": 40000}})";
  EventLog logs[3];
  for (auto& log : logs) {
    ASSERT_TRUE(service.Submit(job, log.Sink()));
  }
  for (auto& log : logs) log.WaitDone();
  EXPECT_EQ(service.runs_started(), 1u);
  EXPECT_EQ(service.dedup_joins(), 2u);
  for (auto& log : logs) {
    EXPECT_EQ(log.last().event, "result");
    EXPECT_EQ(log.last().payload, logs[0].last().payload);
  }
  // Every subscriber's stream is tagged with its own id.
  EXPECT_NE(logs[0].last().id, logs[1].last().id);
}

TEST(ServeService, TypedErrorsDoNotReachTheScheduler) {
  ExperimentService service(SmallService());
  const struct {
    const char* request;
    const char* code;
  } cases[] = {
      {"{oops", "bad_json"},
      {R"({"scenario": "credit", "trials": "three"})", "bad_request"},
      {R"({"scenario": "galaxy"})", "unknown_scenario"},
      {R"({"scenario": "credit", "set": {"num_users": -5}})",
       "bad_parameter"},
      {R"({"scenario": "credit", "sweep": {"warp": [1]}})",
       "bad_parameter"},
  };
  for (const auto& test_case : cases) {
    EventLog log;
    EXPECT_FALSE(service.Submit(test_case.request, log.Sink()))
        << test_case.request;
    ASSERT_EQ(log.events.size(), 1u) << test_case.request;
    EXPECT_EQ(log.events[0].event, "error");
    EXPECT_EQ(log.events[0].code, test_case.code) << test_case.request;
  }
  EXPECT_EQ(service.runs_started(), 0u);
  // The service keeps serving after every rejection.
  EventLog log;
  ASSERT_TRUE(service.Submit(kSmallCreditJob, log.Sink()));
  log.WaitDone();
  EXPECT_EQ(log.last().event, "result");
}

TEST(ServeService, ShutdownRejectsNewJobsWithTypedError) {
  ExperimentService service(SmallService());
  service.Shutdown();
  EventLog log;
  EXPECT_FALSE(service.Submit(kSmallCreditJob, log.Sink()));
  ASSERT_EQ(log.events.size(), 1u);
  EXPECT_EQ(log.events[0].code, "shutting_down");
}

// --- TCP server -------------------------------------------------------

TEST(ServeServer, ServesOverLoopbackByteIdenticallyToTheRenderer) {
  ServerOptions options;
  options.service = SmallService();
  Server server(options);
  ASSERT_TRUE(server.Start());
  ASSERT_GT(server.port(), 0);

  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect(server.port(), &error)) << error;
  ClientEvent last;
  ASSERT_TRUE(client.SubmitAndWait(kSmallCreditJob, &last, &error)) << error;

  // The served payload equals the shared renderer's output for the
  // same spec — the serving path adds no bytes and loses none.
  std::unique_ptr<eqimpact::sim::Scenario> scenario =
      eqimpact::sim::CreateScenario("credit");
  ASSERT_TRUE(scenario->SetParameter("num_users", 150));
  eqimpact::sim::ExperimentOptions experiment;
  experiment.num_trials = 2;
  experiment.num_threads = 1;
  eqimpact::sim::ExperimentResult direct =
      eqimpact::sim::RunExperiment(scenario.get(), experiment);
  eqimpact::serve::RenderHeader header;
  header.num_trials = 2;
  header.provenance_json = eqimpact::serve::RenderProvenance(
      false, 0, "", false, "\"served\": true");
  EXPECT_EQ(last.payload,
            eqimpact::serve::RenderExperimentJson(direct, header));
  EXPECT_EQ(last.digest, eqimpact::sim::ExperimentDigest(direct));

  // A malformed line gets a typed error and leaves the connection and
  // the server alive for the next request.
  ASSERT_TRUE(client.Send("this is not json"));
  ClientEvent event;
  ASSERT_TRUE(client.ReadEvent(&event, &error)) << error;
  EXPECT_EQ(event.event, "error");
  EXPECT_EQ(event.code, "bad_json");
  ASSERT_TRUE(client.SubmitAndWait(kSmallCreditJob, &last, &error)) << error;
  EXPECT_TRUE(last.cached);

  server.Shutdown();
}

TEST(ServeServer, ShutdownDrainsInFlightJobs) {
  ServerOptions options;
  options.service = SmallService();
  Server server(options);
  ASSERT_TRUE(server.Start());

  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect(server.port(), &error)) << error;
  ASSERT_TRUE(client.Send(
      R"({"scenario": "credit", "trials": 2, "set": {"num_users": 60000}})"));
  ClientEvent event;
  ASSERT_TRUE(client.ReadEvent(&event, &error)) << error;
  ASSERT_EQ(event.event, "accepted");

  // Shut down while the job runs: the drain must still deliver its
  // result before the socket closes.
  std::thread shutdown_thread([&server] { server.Shutdown(); });
  bool saw_result = false;
  while (client.ReadEvent(&event, &error)) {
    if (event.event == "result") {
      saw_result = true;
      break;
    }
  }
  shutdown_thread.join();
  EXPECT_TRUE(saw_result);
  EXPECT_EQ(server.service().runs_started(), 1u);
}

// --- Line framer ------------------------------------------------------

TEST(ServeLineFramer, FramesStripsAndSkipsAcrossChunks) {
  LineFramer framer(64);
  std::vector<std::string> lines;
  size_t overflows = 0;
  auto on_line = [&lines](std::string&& line) {
    lines.push_back(std::move(line));
  };
  auto on_overflow = [&overflows] { ++overflows; };
  // One line split across feeds, a '\r\n' line, and empty lines skipped.
  const std::string input = "hel";
  framer.Feed(input.data(), input.size(), on_line, on_overflow);
  const std::string rest = "lo\nworld\r\n\n\r\nsecond\n";
  framer.Feed(rest.data(), rest.size(), on_line, on_overflow);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "hello");
  EXPECT_EQ(lines[1], "world");
  EXPECT_EQ(lines[2], "second");
  EXPECT_EQ(overflows, 0u);
}

TEST(ServeLineFramer, OverflowDiscardsAndResyncsAtTheNextNewline) {
  LineFramer framer(8);
  std::vector<std::string> lines;
  size_t overflows = 0;
  auto on_line = [&lines](std::string&& line) {
    lines.push_back(std::move(line));
  };
  auto on_overflow = [&overflows] { ++overflows; };
  // An oversized line fed in pieces: exactly one overflow callback, the
  // tail is discarded, and the next line parses normally.
  const std::string big(20, 'x');
  framer.Feed(big.data(), big.size(), on_line, on_overflow);
  EXPECT_EQ(overflows, 1u);
  EXPECT_TRUE(framer.discarding());
  const std::string tail = "yyy\nok\n";
  framer.Feed(tail.data(), tail.size(), on_line, on_overflow);
  EXPECT_EQ(overflows, 1u);
  EXPECT_FALSE(framer.discarding());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "ok");
  // A line of exactly the cap passes.
  const std::string exact = std::string(8, 'z') + "\n";
  framer.Feed(exact.data(), exact.size(), on_line, on_overflow);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], std::string(8, 'z'));
  EXPECT_EQ(overflows, 1u);
}

// --- Transport hardening (both transports) ----------------------------

/// Value-parameterized over the two transports: the lifecycle limits
/// (line cap, idle timeout, connection cap) behave identically.
class ServeTransportTest
    : public ::testing::TestWithParam<ServerTransport> {
 protected:
  ServerOptions Options() {
    ServerOptions options;
    options.service = SmallService();
    options.transport = GetParam();
    return options;
  }
};

TEST_P(ServeTransportTest, OversizedLineGetsTypedErrorAndResyncs) {
  ServerOptions options = Options();
  options.limits.max_line_bytes = 256;
  Server server(options);
  ASSERT_TRUE(server.Start());

  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect(server.port(), &error)) << error;
  ASSERT_TRUE(client.Send(std::string(1000, 'x')));
  ClientEvent event;
  ASSERT_TRUE(client.ReadEvent(&event, &error)) << error;
  EXPECT_EQ(event.event, "error");
  EXPECT_EQ(event.code, "bad_request");
  EXPECT_NE(event.message.find("exceeds"), std::string::npos);
  // The connection survives and the next request serves normally.
  ClientEvent last;
  ASSERT_TRUE(client.SubmitAndWait(kSmallCreditJob, &last, &error)) << error;
  EXPECT_EQ(last.event, "result");
  EXPECT_EQ(server.transport_stats().oversized_lines, 1u);
  server.Shutdown();
}

TEST_P(ServeTransportTest, IdleConnectionsAreClosed) {
  ServerOptions options = Options();
  options.limits.idle_timeout_ms = 150;
  Server server(options);
  ASSERT_TRUE(server.Start());

  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect(server.port(), &error)) << error;
  // No traffic: the server must close us (ReadEvent sees EOF).
  ClientEvent event;
  EXPECT_FALSE(client.ReadEvent(&event, &error));
  EXPECT_EQ(server.transport_stats().idle_closes, 1u);
  server.Shutdown();
}

TEST_P(ServeTransportTest, ConnectionCapRejectsWithTypedError) {
  ServerOptions options = Options();
  options.limits.max_connections = 2;
  Server server(options);
  ASSERT_TRUE(server.Start());

  Client first;
  Client second;
  std::string error;
  ASSERT_TRUE(first.Connect(server.port(), &error)) << error;
  ASSERT_TRUE(second.Connect(server.port(), &error)) << error;
  // Make sure both connections are registered before the third arrives
  // (Connect returns at SYN time, before the server accepts).
  ClientEvent last;
  ASSERT_TRUE(first.SubmitAndWait(kSmallCreditJob, &last, &error)) << error;
  ASSERT_TRUE(second.SubmitAndWait(kSmallCreditJob, &last, &error)) << error;

  Client third;
  ASSERT_TRUE(third.Connect(server.port(), &error)) << error;
  ClientEvent event;
  ASSERT_TRUE(third.ReadEvent(&event, &error)) << error;
  EXPECT_EQ(event.event, "error");
  EXPECT_EQ(event.code, "too_many_connections");
  EXPECT_FALSE(third.ReadEvent(&event, &error));  // Then closed.
  EXPECT_EQ(server.transport_stats().connections_rejected, 1u);

  // The capped-out server still serves the admitted connections.
  ASSERT_TRUE(first.SubmitAndWait(kSmallCreditJob, &last, &error)) << error;
  EXPECT_EQ(last.event, "result");
  server.Shutdown();
}

TEST_P(ServeTransportTest, ShutdownDrainsInFlightJobs) {
  ServerOptions options = Options();
  Server server(options);
  ASSERT_TRUE(server.Start());

  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect(server.port(), &error)) << error;
  ASSERT_TRUE(client.Send(
      R"({"scenario": "credit", "trials": 2, "set": {"num_users": 60000}})"));
  ClientEvent event;
  ASSERT_TRUE(client.ReadEvent(&event, &error)) << error;
  ASSERT_EQ(event.event, "accepted");

  std::thread shutdown_thread([&server] { server.Shutdown(); });
  bool saw_result = false;
  while (client.ReadEvent(&event, &error)) {
    if (event.event == "result") {
      saw_result = true;
      break;
    }
  }
  shutdown_thread.join();
  EXPECT_TRUE(saw_result);
  EXPECT_EQ(server.service().runs_started(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, ServeTransportTest,
    ::testing::Values(ServerTransport::kThreads, ServerTransport::kEpoll),
    [](const ::testing::TestParamInfo<ServerTransport>& info) {
      return info.param == ServerTransport::kThreads ? "Threads" : "Epoll";
    });

// --- Epoll transport --------------------------------------------------

TEST(ServeEventLoop, SlowReaderHitsBackpressureWithoutCorruption) {
  ServerOptions options;
  options.service = SmallService();
  options.transport = ServerTransport::kEpoll;
  // Tiny socket buffer and watermarks so a handful of cached results
  // cross the high watermark while the client refuses to read.
  options.limits.socket_send_buffer = 1;  // Kernel clamps to its floor.
  options.limits.write_high_watermark = 4 * 1024;
  options.limits.write_low_watermark = 512;
  Server server(options);
  ASSERT_TRUE(server.Start());

  // Raw socket so SO_RCVBUF can shrink before connect: the in-flight
  // window (server sndbuf + client rcvbuf) stays a few KB and the rest
  // of the event bytes must queue server-side.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof(address)),
            0);

  // Pipeline many identical jobs without reading a byte: one engine
  // run, every result served from cache/dedup into the write queue.
  const size_t kJobs = 30;
  std::string requests;
  for (size_t i = 0; i < kJobs; ++i) {
    requests += R"({"id": "slow-)" + std::to_string(i) +
                R"(", "scenario": "credit", "trials": 2, )" +
                R"("set": {"num_users": 150}})" + "\n";
  }
  size_t sent = 0;
  while (sent < requests.size()) {
    const ssize_t n = ::send(fd, requests.data() + sent,
                             requests.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }

  // The write queue must cross the high watermark while we stall.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.transport_stats().backpressure_pauses == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "no backpressure pause observed";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Now drain: every queued event must come out intact and in order.
  std::string stream;
  char chunk[4096];
  size_t results = 0;
  std::string first_payload;
  while (results < kJobs) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "connection closed before all results arrived";
    stream.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = stream.find('\n')) != std::string::npos) {
      const std::string line = stream.substr(0, newline);
      stream.erase(0, newline + 1);
      ClientEvent event;
      std::string error;
      ASSERT_TRUE(eqimpact::serve::ParseEventLine(line, &event, &error))
          << error << ": " << line;
      if (event.event != "result") continue;
      ++results;
      if (first_payload.empty()) {
        first_payload = event.payload;
      } else {
        EXPECT_EQ(event.payload, first_payload);  // No corruption.
      }
    }
  }
  ::close(fd);

  const TransportStats stats = server.transport_stats();
  EXPECT_GE(stats.backpressure_pauses, 1u);
  EXPECT_GE(stats.backpressure_resumes, 1u);
  EXPECT_GE(stats.peak_write_queue_bytes,
            options.limits.write_high_watermark);
  EXPECT_EQ(server.service().runs_started(), 1u);
  server.Shutdown();
}

TEST(ServeEventLoop, SixtyFourConnectionPipelinedBurstIsByteIdentical) {
  ServerOptions options;
  options.service = SmallService();
  options.transport = ServerTransport::kEpoll;
  Server server(options);
  ASSERT_TRUE(server.Start());

  // Baseline payloads: one submission per distinct spec.
  const char* kSpecs[] = {
      R"("scenario": "credit", "trials": 2, "set": {"num_users": 150})",
      R"("scenario": "credit", "trials": 2, "seed": 43, "set": {"num_users": 150})",
      R"("scenario": "credit", "trials": 2, "set": {"num_users": 200})",
      R"("scenario": "credit", "trials": 2, "seed": 44, "set": {"num_users": 200})",
  };
  const size_t kDistinct = sizeof(kSpecs) / sizeof(kSpecs[0]);
  std::string error;
  std::vector<std::string> baseline(kDistinct);
  {
    Client warm;
    ASSERT_TRUE(warm.Connect(server.port(), &error)) << error;
    for (size_t i = 0; i < kDistinct; ++i) {
      ClientEvent last;
      ASSERT_TRUE(warm.SubmitAndWait(std::string("{") + kSpecs[i] + "}",
                                     &last, &error))
          << error;
      ASSERT_FALSE(last.payload.empty());
      baseline[i] = last.payload;
    }
  }

  // 64 concurrent connections, each pipelining one request per spec
  // before reading anything back.
  const size_t kConnections = 64;
  std::vector<std::unique_ptr<Client>> clients;
  for (size_t i = 0; i < kConnections; ++i) {
    clients.push_back(std::unique_ptr<Client>(new Client()));
    ASSERT_TRUE(clients.back()->Connect(server.port(), &error))
        << error << " (connection " << i << ")";
  }
  for (size_t i = 0; i < kConnections; ++i) {
    for (size_t k = 0; k < kDistinct; ++k) {
      const std::string request = R"({"id": "c)" + std::to_string(i) +
                                  "-s" + std::to_string(k) + R"(", )" +
                                  kSpecs[k] + "}";
      ASSERT_TRUE(clients[i]->Send(request));
    }
  }
  for (size_t i = 0; i < kConnections; ++i) {
    size_t results = 0;
    while (results < kDistinct) {
      ClientEvent event;
      ASSERT_TRUE(clients[i]->ReadEvent(&event, &error))
          << error << " (connection " << i << ")";
      ASSERT_NE(event.event, "error") << event.message;
      if (event.event != "result") continue;
      // "c<i>-s<k>": route the result back to its spec by id.
      const size_t spec = static_cast<size_t>(
          event.id[event.id.find("-s") + 2] - '0');
      ASSERT_LT(spec, kDistinct);
      EXPECT_EQ(event.payload, baseline[spec])
          << "payload diverged on connection " << i;
      ++results;
    }
  }

  const TransportStats stats = server.transport_stats();
  EXPECT_EQ(stats.connections_accepted, kConnections + 1);
  EXPECT_EQ(stats.connections_rejected, 0u);
  // 4 distinct engine runs, everything else cache/dedup.
  EXPECT_EQ(server.service().runs_started(), kDistinct);
  server.Shutdown();
}

TEST(ServeEventLoop, PayloadsMatchTheThreadsTransportByteForByte) {
  const char* kJobs[] = {
      kSmallCreditJob,
      R"({"scenario": "market", "trials": 2, "set": {"exploration": 0.1}})",
      R"({"scenario": "credit", "trials": 2, "seed": 7, "sweep": {"num_users": [150, 200]}})",
  };
  std::vector<std::string> payloads[2];
  std::vector<uint64_t> digests[2];
  const ServerTransport transports[] = {ServerTransport::kThreads,
                                        ServerTransport::kEpoll};
  for (int t = 0; t < 2; ++t) {
    ServerOptions options;
    options.service = SmallService();
    options.transport = transports[t];
    Server server(options);
    ASSERT_TRUE(server.Start());
    Client client;
    std::string error;
    ASSERT_TRUE(client.Connect(server.port(), &error)) << error;
    for (const char* job : kJobs) {
      ClientEvent last;
      ASSERT_TRUE(client.SubmitAndWait(job, &last, &error)) << error;
      payloads[t].push_back(last.payload);
      digests[t].push_back(last.digest);
    }
    server.Shutdown();
  }
  ASSERT_EQ(payloads[0].size(), payloads[1].size());
  for (size_t i = 0; i < payloads[0].size(); ++i) {
    EXPECT_EQ(payloads[0][i], payloads[1][i])
        << "transport changed payload bytes for job " << i;
    EXPECT_EQ(digests[0][i], digests[1][i]);
  }
}

}  // namespace
