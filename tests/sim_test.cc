// Unit tests for the sim module: multi-trial aggregation, the
// ensemble-control (loss of ergodicity) experiments, and text tables.

#include <vector>

#include <gtest/gtest.h>

#include "sim/ensemble_control.h"
#include "sim/multi_trial.h"
#include "sim/text_table.h"
#include "stats/adr_accumulator.h"
#include "stats/aggregate.h"
#include "stats/histogram.h"
#include "stats/running_stats.h"
#include "stats/time_series.h"

namespace eqimpact {
namespace {

sim::MultiTrialOptions SmallMultiTrial() {
  sim::MultiTrialOptions options;
  options.loop.num_users = 100;
  options.num_trials = 3;
  options.master_seed = 9;
  return options;
}

TEST(MultiTrialTest, ShapesAndStreamingPool) {
  sim::MultiTrialResult result = sim::RunMultiTrial(SmallMultiTrial());
  EXPECT_EQ(result.trials.size(), 3u);
  EXPECT_EQ(result.years.size(), 19u);
  EXPECT_EQ(result.race_envelopes.size(), credit::kNumRaces);
  EXPECT_EQ(result.race_envelopes[0].mean.size(), 19u);
  // By default no raw per-user series is materialized anywhere — the
  // pooled distribution lives in the streaming accumulator only.
  EXPECT_TRUE(result.pooled_user_adr.empty());
  EXPECT_TRUE(result.pooled_races.empty());
  for (const auto& trial : result.trials) {
    EXPECT_TRUE(trial.user_adr.empty());
  }
  ASSERT_FALSE(result.pooled_adr.empty());
  EXPECT_EQ(result.pooled_adr.num_steps(), 19u);
  EXPECT_EQ(result.pooled_adr.num_groups(), credit::kNumRaces);
  for (size_t k = 0; k < 19; ++k) {
    EXPECT_EQ(result.pooled_adr.StepCount(k), 300);  // 3 trials x 100.
  }
}

TEST(MultiTrialTest, KeepRawSeriesOptInPoolsEverySeries) {
  sim::MultiTrialOptions options = SmallMultiTrial();
  options.keep_raw_series = true;
  sim::MultiTrialResult result = sim::RunMultiTrial(options);
  EXPECT_EQ(result.pooled_user_adr.size(), 300u);  // 3 trials x 100 users.
  EXPECT_EQ(result.pooled_races.size(), 300u);
  EXPECT_EQ(result.trials[0].user_adr.size(), 100u);
}

TEST(MultiTrialTest, AccumulatorMatchesRawPooledSeries) {
  // The streaming accumulator must agree with the raw Figures 4/5 pool:
  // same per-(race, year) counts, moments, extremes, and bin fractions.
  sim::MultiTrialOptions options = SmallMultiTrial();
  options.keep_raw_series = true;
  options.adr_bins = 10;
  sim::MultiTrialResult result = sim::RunMultiTrial(options);
  const stats::AdrAccumulator& adr = result.pooled_adr;

  for (size_t k = 0; k < result.years.size(); ++k) {
    for (size_t r = 0; r < credit::kNumRaces; ++r) {
      stats::RunningStats reference;
      for (size_t i = 0; i < result.pooled_user_adr.size(); ++i) {
        if (result.pooled_races[i] == static_cast<credit::Race>(r)) {
          reference.Add(result.pooled_user_adr[i][k]);
        }
      }
      EXPECT_EQ(adr.count(k, r), reference.count());
      if (reference.count() == 0) continue;
      EXPECT_NEAR(adr.stats(k, r).Mean(), reference.Mean(), 1e-9);
      EXPECT_NEAR(adr.stats(k, r).StdDev(), reference.StdDev(), 1e-9);
      EXPECT_DOUBLE_EQ(adr.stats(k, r).Min(), reference.Min());
      EXPECT_DOUBLE_EQ(adr.stats(k, r).Max(), reference.Max());
      EXPECT_DOUBLE_EQ(adr.ApproxQuantile(k, r, 0.0), reference.Min());
      EXPECT_DOUBLE_EQ(adr.ApproxQuantile(k, r, 1.0), reference.Max());
    }
    // Race-blind density row vs a histogram over the raw cross-section.
    stats::Histogram histogram(0.0, 1.0, 10);
    histogram.AddAll(stats::CrossSection(result.pooled_user_adr, k));
    for (size_t b = 0; b < 10; ++b) {
      EXPECT_EQ(adr.StepBinCount(k, b), histogram.count(b));
      EXPECT_DOUBLE_EQ(adr.StepBinFraction(k, b), histogram.Fraction(b));
    }
  }
}

TEST(MultiTrialTest, TrialsUseDistinctSeeds) {
  sim::MultiTrialOptions options = SmallMultiTrial();
  options.keep_raw_series = true;
  sim::MultiTrialResult result = sim::RunMultiTrial(options);
  EXPECT_NE(result.trials[0].user_adr, result.trials[1].user_adr);
  EXPECT_NE(result.trials[1].user_adr, result.trials[2].user_adr);
}

TEST(MultiTrialTest, EnvelopeMeanLiesWithinTrialRange) {
  sim::MultiTrialResult result = sim::RunMultiTrial(SmallMultiTrial());
  for (size_t r = 0; r < credit::kNumRaces; ++r) {
    for (size_t k = 0; k < result.years.size(); ++k) {
      double lo = result.trials[0].race_adr[r][k];
      double hi = lo;
      for (const auto& trial : result.trials) {
        lo = std::min(lo, trial.race_adr[r][k]);
        hi = std::max(hi, trial.race_adr[r][k]);
      }
      EXPECT_GE(result.race_envelopes[r].mean[k], lo - 1e-12);
      EXPECT_LE(result.race_envelopes[r].mean[k], hi + 1e-12);
    }
  }
}

TEST(MultiTrialTest, DeterministicInMasterSeed) {
  sim::MultiTrialResult a = sim::RunMultiTrial(SmallMultiTrial());
  sim::MultiTrialResult b = sim::RunMultiTrial(SmallMultiTrial());
  for (size_t t = 0; t < a.trials.size(); ++t) {
    EXPECT_EQ(a.trials[t].user_adr, b.trials[t].user_adr);
  }
}

// --- Ensemble control: the Section VI demonstrations -------------------------

sim::EnsembleOptions DefaultEnsemble() {
  sim::EnsembleOptions options;
  options.num_agents = 10;
  options.target_fraction = 0.5;
  options.steps = 20000;
  options.burn_in = 2000;
  return options;
}

std::vector<bool> Pattern(size_t n, size_t ones_prefix) {
  std::vector<bool> on(n, false);
  for (size_t i = 0; i < ones_prefix && i < n; ++i) on[i] = true;
  return on;
}

TEST(EnsembleControlTest, StableRandomizedRegulatesAggregate) {
  rng::Random random(41);
  sim::EnsembleRunResult result = sim::RunEnsembleControl(
      sim::EnsembleControllerKind::kStableRandomized, DefaultEnsemble(),
      Pattern(10, 0), 0.5, &random);
  EXPECT_NEAR(result.aggregate_average, 0.5, 0.02);
}

TEST(EnsembleControlTest, StableRandomizedGivesEqualImpact) {
  rng::Random random(42);
  sim::EnsembleRunResult result = sim::RunEnsembleControl(
      sim::EnsembleControllerKind::kStableRandomized, DefaultEnsemble(),
      Pattern(10, 0), 0.5, &random);
  // Every agent's long-run average matches the target: the r_i coincide.
  for (double r : result.per_agent_average) EXPECT_NEAR(r, 0.5, 0.03);
  EXPECT_LT(stats::CoincidenceGap(result.per_agent_average), 0.05);
}

TEST(EnsembleControlTest, StableRandomizedIsInitialConditionIndependent) {
  rng::Random random_a(43), random_b(44);
  sim::EnsembleRunResult from_none = sim::RunEnsembleControl(
      sim::EnsembleControllerKind::kStableRandomized, DefaultEnsemble(),
      Pattern(10, 0), 0.5, &random_a);
  sim::EnsembleRunResult from_all = sim::RunEnsembleControl(
      sim::EnsembleControllerKind::kStableRandomized, DefaultEnsemble(),
      Pattern(10, 10), 0.5, &random_b);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(from_none.per_agent_average[i],
                from_all.per_agent_average[i], 0.05);
  }
}

TEST(EnsembleControlTest, IntegralHysteresisRegulatesAggregate) {
  rng::Random random(45);
  sim::EnsembleRunResult result = sim::RunEnsembleControl(
      sim::EnsembleControllerKind::kIntegralHysteresis, DefaultEnsemble(),
      Pattern(10, 5), 0.5, &random);
  // The integrator does its job on the aggregate...
  EXPECT_NEAR(result.aggregate_average, 0.5, 0.05);
}

TEST(EnsembleControlTest, IntegralHysteresisDependsOnInitialConditions) {
  // ...but the per-agent allocation is frozen by the deadband: starting
  // from "first half ON" vs "second half ON" yields permanently different
  // per-agent averages — the loss of ergodicity under integral action.
  rng::Random random_a(46), random_b(47);
  sim::EnsembleOptions options = DefaultEnsemble();
  std::vector<bool> first_half = Pattern(10, 5);
  std::vector<bool> second_half(10, false);
  for (size_t i = 5; i < 10; ++i) second_half[i] = true;

  sim::EnsembleRunResult run_a = sim::RunEnsembleControl(
      sim::EnsembleControllerKind::kIntegralHysteresis, options, first_half,
      0.5, &random_a);
  sim::EnsembleRunResult run_b = sim::RunEnsembleControl(
      sim::EnsembleControllerKind::kIntegralHysteresis, options, second_half,
      0.5, &random_b);

  // Agent 0 is ON forever in run A and OFF forever in run B.
  EXPECT_GT(run_a.per_agent_average[0], 0.9);
  EXPECT_LT(run_b.per_agent_average[0], 0.1);
  // Both runs regulate the aggregate equally well.
  EXPECT_NEAR(run_a.aggregate_average, run_b.aggregate_average, 0.05);
}

TEST(EnsembleControlTest, IntegralHysteresisViolatesEqualImpact) {
  rng::Random random(48);
  sim::EnsembleRunResult result = sim::RunEnsembleControl(
      sim::EnsembleControllerKind::kIntegralHysteresis, DefaultEnsemble(),
      Pattern(10, 5), 0.5, &random);
  // Half the agents average ~1, half ~0: maximal coincidence gap.
  EXPECT_GT(stats::CoincidenceGap(result.per_agent_average), 0.9);
}

TEST(EnsembleControlTest, AggregateSeriesHasRequestedLength) {
  rng::Random random(49);
  sim::EnsembleOptions options = DefaultEnsemble();
  options.steps = 500;
  options.burn_in = 50;
  sim::EnsembleRunResult result = sim::RunEnsembleControl(
      sim::EnsembleControllerKind::kStableRandomized, options,
      Pattern(10, 0), 0.5, &random);
  EXPECT_EQ(result.aggregate_fraction.size(), 500u);
}

// --- Text tables ---------------------------------------------------------------

TEST(TextTableTest, RendersHeaderAndRows) {
  sim::TextTable table({"Year", "ADR"});
  table.AddRow({"2002", "0.05"});
  table.AddRow({"2003", "0.04"});
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("Year"), std::string::npos);
  EXPECT_NE(rendered.find("2003"), std::string::npos);
  // Header + separator + 2 rows = 4 lines.
  int lines = 0;
  for (char c : rendered) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4);
}

TEST(TextTableTest, CsvOutput) {
  sim::TextTable table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(TextTableTest, CellFormatting) {
  EXPECT_EQ(sim::TextTable::Cell(3.14159, 2), "3.14");
  EXPECT_EQ(sim::TextTable::Cell(42), "42");
}

}  // namespace
}  // namespace eqimpact
