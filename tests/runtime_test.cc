// Unit tests for the runtime layer: thread pool, parallel_for, seed
// sequence, and the parallel-vs-sequential determinism contract of
// sim::RunMultiTrial.

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "rng/random.h"
#include "runtime/parallel_for.h"
#include "runtime/seed_sequence.h"
#include "runtime/thread_pool.h"
#include "sim/ensemble_control.h"
#include "sim/multi_trial.h"

namespace eqimpact {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  runtime::ThreadPool pool(4);
  std::atomic<int> counter(0);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  runtime::ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, IsReusableAcrossWaves) {
  runtime::ThreadPool pool(3);
  std::atomic<int> counter(0);
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, PropagatesTaskException) {
  runtime::ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The exception is cleared: the pool keeps working afterwards.
  std::atomic<int> counter(0);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(runtime::ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 8u}) {
    std::vector<int> visits(1000, 0);
    runtime::ParallelForOptions options;
    options.num_threads = threads;
    runtime::ParallelFor(
        visits.size(), [&visits](size_t i) { visits[i] += 1; }, options);
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 1000)
        << "threads=" << threads;
    for (int v : visits) EXPECT_EQ(v, 1);
  }
}

TEST(ParallelForTest, ZeroCountIsANoOp) {
  std::atomic<int> counter(0);
  runtime::ParallelFor(0, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ParallelForTest, SlotWritesAreDeterministic) {
  auto run = [](size_t threads) {
    std::vector<uint64_t> out(200);
    runtime::ParallelForOptions options;
    options.num_threads = threads;
    runtime::ParallelFor(
        out.size(),
        [&out](size_t i) {
          rng::Random random(runtime::SeedSequence(7).Seed(i));
          out[i] = random.UniformInt(1u << 30);
        },
        options);
    return out;
  };
  std::vector<uint64_t> sequential = run(1);
  EXPECT_EQ(run(2), sequential);
  EXPECT_EQ(run(8), sequential);
}

TEST(ParallelForTest, PropagatesBodyException) {
  runtime::ParallelForOptions options;
  options.num_threads = 4;
  EXPECT_THROW(runtime::ParallelFor(
                   100,
                   [](size_t i) {
                     if (i == 42) throw std::runtime_error("bad index");
                   },
                   options),
               std::runtime_error);
}

TEST(ParallelForTest, SequentialPathPropagatesException) {
  runtime::ParallelForOptions options;
  options.num_threads = 1;
  EXPECT_THROW(runtime::ParallelFor(
                   10,
                   [](size_t i) {
                     if (i == 3) throw std::logic_error("sequential");
                   },
                   options),
               std::logic_error);
}

TEST(SeedSequenceTest, MatchesDeriveSeedConvention) {
  runtime::SeedSequence seeds(42);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(seeds.Seed(i), rng::DeriveSeed(42, i));
  }
}

TEST(SeedSequenceTest, ChildrenAreDistinct) {
  runtime::SeedSequence seeds(123);
  std::set<uint64_t> unique;
  for (uint64_t i = 0; i < 1000; ++i) unique.insert(seeds.Seed(i));
  EXPECT_EQ(unique.size(), 1000u);
}

TEST(SeedSequenceTest, ChildOpensNestedNamespace) {
  runtime::SeedSequence seeds(9);
  runtime::SeedSequence child = seeds.Child(3);
  EXPECT_EQ(child.master(), seeds.Seed(3));
  // A child's streams differ from the parent's.
  EXPECT_NE(child.Seed(0), seeds.Seed(0));
}

// The headline determinism contract: RunMultiTrial produces bitwise-
// identical results at every thread count. Small cohorts keep this fast.
TEST(MultiTrialParallelTest, BitwiseIdenticalAcrossThreadCounts) {
  sim::MultiTrialOptions options;
  options.num_trials = 6;
  options.loop.num_users = 40;
  options.master_seed = 42;

  options.num_threads = 1;
  sim::MultiTrialResult sequential = RunMultiTrial(options);

  for (size_t threads : {2u, 8u}) {
    options.num_threads = threads;
    sim::MultiTrialResult parallel = RunMultiTrial(options);

    ASSERT_EQ(parallel.trials.size(), sequential.trials.size());
    EXPECT_EQ(parallel.years, sequential.years);
    EXPECT_EQ(parallel.pooled_races, sequential.pooled_races);
    EXPECT_EQ(parallel.pooled_user_adr, sequential.pooled_user_adr);
    for (size_t t = 0; t < sequential.trials.size(); ++t) {
      EXPECT_EQ(parallel.trials[t].user_adr, sequential.trials[t].user_adr)
          << "trial " << t << " threads " << threads;
      EXPECT_EQ(parallel.trials[t].race_adr, sequential.trials[t].race_adr);
      EXPECT_EQ(parallel.trials[t].overall_adr,
                sequential.trials[t].overall_adr);
    }
    ASSERT_EQ(parallel.race_envelopes.size(),
              sequential.race_envelopes.size());
    for (size_t r = 0; r < sequential.race_envelopes.size(); ++r) {
      EXPECT_EQ(parallel.race_envelopes[r].mean,
                sequential.race_envelopes[r].mean);
      EXPECT_EQ(parallel.race_envelopes[r].std_dev,
                sequential.race_envelopes[r].std_dev);
    }
  }
}

TEST(EnsembleStudyTest, BitwiseIdenticalAcrossThreadCounts) {
  std::vector<sim::EnsembleStudySpec> specs;
  for (int i = 0; i < 6; ++i) {
    sim::EnsembleStudySpec spec;
    spec.kind = (i % 2 == 0) ? sim::EnsembleControllerKind::kStableRandomized
                             : sim::EnsembleControllerKind::kIntegralHysteresis;
    spec.initial_on.assign(10, false);
    for (int j = 0; j < i; ++j) spec.initial_on[j] = true;
    specs.push_back(spec);
  }
  sim::EnsembleStudyOptions options;
  options.ensemble.steps = 500;
  options.ensemble.burn_in = 100;
  options.master_seed = 7;

  options.num_threads = 1;
  std::vector<sim::EnsembleRunResult> sequential =
      sim::RunEnsembleStudy(specs, options);
  options.num_threads = 4;
  std::vector<sim::EnsembleRunResult> parallel =
      sim::RunEnsembleStudy(specs, options);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(parallel[i].per_agent_average, sequential[i].per_agent_average);
    EXPECT_EQ(parallel[i].aggregate_fraction,
              sequential[i].aggregate_fraction);
    EXPECT_EQ(parallel[i].aggregate_average, sequential[i].aggregate_average);
    EXPECT_EQ(parallel[i].final_signal, sequential[i].final_signal);
  }
}

}  // namespace
}  // namespace eqimpact
