// Unit tests for the runtime layer: thread pool, parallel_for, seed
// sequence, and the parallel-vs-sequential determinism contract of
// sim::RunMultiTrial.

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "credit/credit_loop.h"
#include "rng/random.h"
#include "runtime/parallel_for.h"
#include "runtime/seed_sequence.h"
#include "runtime/thread_pool.h"
#include "sim/ensemble_control.h"
#include "sim/multi_trial.h"
#include "stats/adr_accumulator.h"

namespace eqimpact {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  runtime::ThreadPool pool(4);
  std::atomic<int> counter(0);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  runtime::ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, IsReusableAcrossWaves) {
  runtime::ThreadPool pool(3);
  std::atomic<int> counter(0);
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, PropagatesTaskException) {
  runtime::ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The exception is cleared: the pool keeps working afterwards.
  std::atomic<int> counter(0);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(runtime::ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 8u}) {
    std::vector<int> visits(1000, 0);
    runtime::ParallelForOptions options;
    options.num_threads = threads;
    runtime::ParallelFor(
        visits.size(), [&visits](size_t i) { visits[i] += 1; }, options);
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 1000)
        << "threads=" << threads;
    for (int v : visits) EXPECT_EQ(v, 1);
  }
}

TEST(ParallelForTest, ZeroCountIsANoOp) {
  std::atomic<int> counter(0);
  runtime::ParallelFor(0, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ParallelForTest, SlotWritesAreDeterministic) {
  auto run = [](size_t threads) {
    std::vector<uint64_t> out(200);
    runtime::ParallelForOptions options;
    options.num_threads = threads;
    runtime::ParallelFor(
        out.size(),
        [&out](size_t i) {
          rng::Random random(runtime::SeedSequence(7).Seed(i));
          out[i] = random.UniformInt(1u << 30);
        },
        options);
    return out;
  };
  std::vector<uint64_t> sequential = run(1);
  EXPECT_EQ(run(2), sequential);
  EXPECT_EQ(run(8), sequential);
}

TEST(ParallelForTest, PropagatesBodyException) {
  runtime::ParallelForOptions options;
  options.num_threads = 4;
  EXPECT_THROW(runtime::ParallelFor(
                   100,
                   [](size_t i) {
                     if (i == 42) throw std::runtime_error("bad index");
                   },
                   options),
               std::runtime_error);
}

TEST(ParallelForTest, SequentialPathPropagatesException) {
  runtime::ParallelForOptions options;
  options.num_threads = 1;
  EXPECT_THROW(runtime::ParallelFor(
                   10,
                   [](size_t i) {
                     if (i == 3) throw std::logic_error("sequential");
                   },
                   options),
               std::logic_error);
}

TEST(ParallelForTest, ReusesCallerOwnedPoolAcrossCalls) {
  runtime::ThreadPool pool(3);
  runtime::ParallelForOptions options;
  options.pool = &pool;
  EXPECT_EQ(runtime::EffectiveNumThreads(options), 3u);
  std::atomic<int> counter(0);
  for (int wave = 0; wave < 4; ++wave) {
    runtime::ParallelFor(
        50, [&counter](size_t) { counter.fetch_add(1); }, options);
  }
  EXPECT_EQ(counter.load(), 200);
  // The pool is idle afterwards and still usable directly.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 201);
}

TEST(ParallelForTest, CallerOwnedPoolPropagatesException) {
  runtime::ThreadPool pool(2);
  runtime::ParallelForOptions options;
  options.pool = &pool;
  EXPECT_THROW(runtime::ParallelFor(
                   100,
                   [](size_t i) {
                     if (i == 7) throw std::runtime_error("pooled");
                   },
                   options),
               std::runtime_error);
  // The pool survives the failed dispatch.
  std::atomic<int> counter(0);
  runtime::ParallelFor(
      10, [&counter](size_t) { counter.fetch_add(1); }, options);
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelForChunksTest, NumChunksCoversTheRange) {
  EXPECT_EQ(runtime::NumChunks(0, 10), 0u);
  EXPECT_EQ(runtime::NumChunks(1, 10), 1u);
  EXPECT_EQ(runtime::NumChunks(10, 10), 1u);
  EXPECT_EQ(runtime::NumChunks(11, 10), 2u);
  EXPECT_EQ(runtime::NumChunks(100, 7), 15u);
}

TEST(ParallelForChunksTest, ChunksPartitionTheRange) {
  for (size_t threads : {1u, 2u, 8u}) {
    std::vector<int> visits(103, 0);
    std::vector<int> chunk_of(103, -1);
    runtime::ParallelForOptions options;
    options.num_threads = threads;
    runtime::ParallelForChunks(
        visits.size(), 10,
        [&](size_t chunk, size_t begin, size_t end) {
          EXPECT_EQ(begin, chunk * 10);
          EXPECT_LE(end, visits.size());
          EXPECT_LE(end - begin, 10u);
          for (size_t i = begin; i < end; ++i) {
            visits[i] += 1;
            chunk_of[i] = static_cast<int>(chunk);
          }
        },
        options);
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i], 1) << "threads=" << threads << " i=" << i;
      EXPECT_EQ(chunk_of[i], static_cast<int>(i / 10));
    }
  }
}

TEST(ParallelForChunksTest, OrderedReductionIsThreadCountInvariant) {
  // The reduction recipe the ml fit and the credit engine rely on:
  // per-chunk partial sums folded in chunk order are bitwise-identical
  // at every thread count, because the chunk layout and both summation
  // orders are fixed by (count, chunk_size) alone.
  std::vector<double> values(10007);
  rng::Random random(99);
  for (double& v : values) v = random.UniformDouble(-1.0, 1.0);

  auto reduce = [&values](size_t threads) {
    constexpr size_t kChunk = 64;
    std::vector<double> partials(runtime::NumChunks(values.size(), kChunk));
    runtime::ParallelForOptions options;
    options.num_threads = threads;
    runtime::ParallelForChunks(
        values.size(), kChunk,
        [&](size_t chunk, size_t begin, size_t end) {
          double local = 0.0;
          for (size_t i = begin; i < end; ++i) local += values[i];
          partials[chunk] = local;
        },
        options);
    double total = 0.0;
    for (double partial : partials) total += partial;
    return total;
  };
  const double sequential = reduce(1);
  EXPECT_EQ(reduce(2), sequential);   // Bitwise, not approximate.
  EXPECT_EQ(reduce(8), sequential);
}

TEST(SeedSequenceTest, MatchesDeriveSeedConvention) {
  runtime::SeedSequence seeds(42);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(seeds.Seed(i), rng::DeriveSeed(42, i));
  }
}

TEST(SeedSequenceTest, ChildrenAreDistinct) {
  runtime::SeedSequence seeds(123);
  std::set<uint64_t> unique;
  for (uint64_t i = 0; i < 1000; ++i) unique.insert(seeds.Seed(i));
  EXPECT_EQ(unique.size(), 1000u);
}

TEST(SeedSequenceTest, ChildOpensNestedNamespace) {
  runtime::SeedSequence seeds(9);
  runtime::SeedSequence child = seeds.Child(3);
  EXPECT_EQ(child.master(), seeds.Seed(3));
  // A child's streams differ from the parent's.
  EXPECT_NE(child.Seed(0), seeds.Seed(0));
}

// Bitwise equality of two streaming accumulators, cell by cell.
void ExpectAccumulatorsEqual(const stats::AdrAccumulator& a,
                             const stats::AdrAccumulator& b) {
  ASSERT_EQ(a.num_groups(), b.num_groups());
  ASSERT_EQ(a.num_steps(), b.num_steps());
  ASSERT_EQ(a.num_bins(), b.num_bins());
  for (size_t k = 0; k < a.num_steps(); ++k) {
    for (size_t g = 0; g < a.num_groups(); ++g) {
      EXPECT_EQ(a.count(k, g), b.count(k, g));
      EXPECT_EQ(a.stats(k, g).Mean(), b.stats(k, g).Mean());
      EXPECT_EQ(a.stats(k, g).Variance(), b.stats(k, g).Variance());
      for (size_t bin = 0; bin < a.num_bins(); ++bin) {
        EXPECT_EQ(a.bin_count(k, g, bin), b.bin_count(k, g, bin));
      }
    }
  }
}

// The headline determinism contract: RunMultiTrial produces bitwise-
// identical results at every thread count. Small cohorts keep this fast.
TEST(MultiTrialParallelTest, BitwiseIdenticalAcrossThreadCounts) {
  sim::MultiTrialOptions options;
  options.num_trials = 6;
  options.loop.num_users = 40;
  options.master_seed = 42;
  options.keep_raw_series = true;

  options.num_threads = 1;
  sim::MultiTrialResult sequential = RunMultiTrial(options);

  for (size_t threads : {2u, 8u}) {
    options.num_threads = threads;
    sim::MultiTrialResult parallel = RunMultiTrial(options);

    ASSERT_EQ(parallel.trials.size(), sequential.trials.size());
    EXPECT_EQ(parallel.years, sequential.years);
    EXPECT_EQ(parallel.pooled_races, sequential.pooled_races);
    EXPECT_EQ(parallel.pooled_user_adr, sequential.pooled_user_adr);
    for (size_t t = 0; t < sequential.trials.size(); ++t) {
      EXPECT_EQ(parallel.trials[t].user_adr, sequential.trials[t].user_adr)
          << "trial " << t << " threads " << threads;
      EXPECT_EQ(parallel.trials[t].race_adr, sequential.trials[t].race_adr);
      EXPECT_EQ(parallel.trials[t].overall_adr,
                sequential.trials[t].overall_adr);
    }
    ASSERT_EQ(parallel.race_envelopes.size(),
              sequential.race_envelopes.size());
    for (size_t r = 0; r < sequential.race_envelopes.size(); ++r) {
      EXPECT_EQ(parallel.race_envelopes[r].mean,
                sequential.race_envelopes[r].mean);
      EXPECT_EQ(parallel.race_envelopes[r].std_dev,
                sequential.race_envelopes[r].std_dev);
    }
    // The streaming pool merges per-trial accumulators in slot order, so
    // it is bitwise-stable too.
    ExpectAccumulatorsEqual(parallel.pooled_adr, sequential.pooled_adr);
  }
}

// The within-trial contract: the credit engine's chunked passes give the
// same trial at 1, 2 and 8 intra-trial threads. A small chunk size makes
// the 500-user cohort span 8 chunks so multi-chunk scheduling is
// genuinely exercised.
TEST(MultiTrialParallelTest, WithinTrialBitwiseIdenticalAcrossThreadCounts) {
  credit::CreditLoopOptions options;
  options.num_users = 500;
  options.users_per_chunk = 64;
  options.seed = 11;

  options.num_threads = 1;
  credit::CreditLoopResult sequential =
      credit::CreditScoringLoop(options).Run();

  for (size_t threads : {2u, 8u}) {
    options.num_threads = threads;
    credit::CreditLoopResult parallel =
        credit::CreditScoringLoop(options).Run();
    EXPECT_EQ(parallel.user_adr, sequential.user_adr)
        << "threads " << threads;
    EXPECT_EQ(parallel.race_adr, sequential.race_adr);
    EXPECT_EQ(parallel.race_approval, sequential.race_approval);
    EXPECT_EQ(parallel.overall_adr, sequential.overall_adr);
    EXPECT_EQ(parallel.races, sequential.races);
    ASSERT_EQ(parallel.scorecards.size(), sequential.scorecards.size());
    for (size_t s = 0; s < sequential.scorecards.size(); ++s) {
      EXPECT_EQ(parallel.scorecards[s].history_weight,
                sequential.scorecards[s].history_weight);
      EXPECT_EQ(parallel.scorecards[s].income_weight,
                sequential.scorecards[s].income_weight);
    }
  }
}

// Trial-level and within-trial parallelism compose without breaking the
// contract: 2 trial workers x 2 intra-trial workers equals sequential.
TEST(MultiTrialParallelTest, NestedParallelismStaysDeterministic) {
  sim::MultiTrialOptions options;
  options.num_trials = 3;
  options.loop.num_users = 300;
  options.loop.users_per_chunk = 64;
  options.master_seed = 5;
  options.keep_raw_series = true;

  options.num_threads = 1;
  options.loop.num_threads = 1;
  sim::MultiTrialResult sequential = RunMultiTrial(options);

  options.num_threads = 2;
  options.loop.num_threads = 2;
  sim::MultiTrialResult nested = RunMultiTrial(options);

  EXPECT_EQ(nested.pooled_user_adr, sequential.pooled_user_adr);
  ExpectAccumulatorsEqual(nested.pooled_adr, sequential.pooled_adr);
}

TEST(EnsembleStudyTest, BitwiseIdenticalAcrossThreadCounts) {
  std::vector<sim::EnsembleStudySpec> specs;
  for (int i = 0; i < 6; ++i) {
    sim::EnsembleStudySpec spec;
    spec.kind = (i % 2 == 0) ? sim::EnsembleControllerKind::kStableRandomized
                             : sim::EnsembleControllerKind::kIntegralHysteresis;
    spec.initial_on.assign(10, false);
    for (int j = 0; j < i; ++j) spec.initial_on[j] = true;
    specs.push_back(spec);
  }
  sim::EnsembleStudyOptions options;
  options.ensemble.steps = 500;
  options.ensemble.burn_in = 100;
  options.master_seed = 7;

  options.num_threads = 1;
  std::vector<sim::EnsembleRunResult> sequential =
      sim::RunEnsembleStudy(specs, options);
  options.num_threads = 4;
  std::vector<sim::EnsembleRunResult> parallel =
      sim::RunEnsembleStudy(specs, options);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(parallel[i].per_agent_average, sequential[i].per_agent_average);
    EXPECT_EQ(parallel[i].aggregate_fraction,
              sequential[i].aggregate_fraction);
    EXPECT_EQ(parallel[i].aggregate_average, sequential[i].aggregate_average);
    EXPECT_EQ(parallel[i].final_signal, sequential[i].final_signal);
  }
}

}  // namespace
}  // namespace eqimpact
