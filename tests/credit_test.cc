// Unit tests for the credit module: income model, repayment behaviour,
// ADR filter, lending policies, population, and the full closed loop.

#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "credit/adr_filter.h"
#include "credit/credit_loop.h"
#include "credit/income_model.h"
#include "credit/lending_policy.h"
#include "credit/population.h"
#include "credit/race.h"
#include "credit/repayment_model.h"
#include "rng/normal.h"
#include "rng/random.h"

namespace eqimpact {
namespace {

using credit::Race;

TEST(RaceTest, NamesMatchCpsLabels) {
  EXPECT_EQ(RaceName(Race::kBlackAlone), "BLACK ALONE");
  EXPECT_EQ(RaceName(Race::kWhiteAlone), "WHITE ALONE");
  EXPECT_EQ(RaceName(Race::kAsianAlone), "ASIAN ALONE");
}

TEST(RaceTest, SharesMatchPaperAndSumToNearOne) {
  EXPECT_DOUBLE_EQ(credit::kRaceShares2002[0], 0.1235);
  EXPECT_DOUBLE_EQ(credit::kRaceShares2002[1], 0.8406);
  EXPECT_DOUBLE_EQ(credit::kRaceShares2002[2], 0.0359);
  double total = credit::kRaceShares2002[0] + credit::kRaceShares2002[1] +
                 credit::kRaceShares2002[2];
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(IncomeModelTest, SharesSumToOneForAllYearsAndRaces) {
  credit::IncomeModel model;
  for (int year = credit::kFirstYear; year <= credit::kLastYear; ++year) {
    for (size_t r = 0; r < credit::kNumRaces; ++r) {
      auto shares = model.BracketShares(year, static_cast<Race>(r));
      EXPECT_EQ(shares.size(), credit::kNumIncomeBrackets);
      double total = std::accumulate(shares.begin(), shares.end(), 0.0);
      EXPECT_NEAR(total, 1.0, 1e-12) << "year " << year << " race " << r;
    }
  }
}

TEST(IncomeModelTest, Figure2AsianTopBracketShare) {
  // Paper Figure 2: "a larger share (almost 20%) of ASIAN ALONE households
  // makes more than $200K in 2020".
  credit::IncomeModel model;
  auto asian = model.BracketShares(2020, Race::kAsianAlone);
  EXPECT_NEAR(asian.back(), 0.198, 0.01);
  auto black = model.BracketShares(2020, Race::kBlackAlone);
  auto white = model.BracketShares(2020, Race::kWhiteAlone);
  EXPECT_GT(asian.back(), white.back());
  EXPECT_GT(white.back(), black.back());
}

TEST(IncomeModelTest, Figure2BlackMostlyBelow75K) {
  // Paper: "the income of most BLACK ALONE households is less than $75K".
  credit::IncomeModel model;
  auto shares = model.BracketShares(2020, Race::kBlackAlone);
  double below75 = shares[0] + shares[1] + shares[2] + shares[3] + shares[4];
  EXPECT_GT(below75, 0.5);
}

TEST(IncomeModelTest, IncomesGrowOverTime) {
  // Nominal income growth 2002 -> 2020: the under-15K share shrinks and
  // the over-200K share grows for every race.
  credit::IncomeModel model;
  for (size_t r = 0; r < credit::kNumRaces; ++r) {
    Race race = static_cast<Race>(r);
    auto early = model.BracketShares(2002, race);
    auto late = model.BracketShares(2020, race);
    EXPECT_GT(early.front(), late.front()) << "race " << r;
    EXPECT_LT(early.back(), late.back()) << "race " << r;
  }
}

TEST(IncomeModelTest, YearsOutsideRangeAreClamped) {
  credit::IncomeModel model;
  EXPECT_EQ(model.BracketShares(1990, Race::kWhiteAlone),
            model.BracketShares(2002, Race::kWhiteAlone));
  EXPECT_EQ(model.BracketShares(2030, Race::kWhiteAlone),
            model.BracketShares(2020, Race::kWhiteAlone));
}

TEST(IncomeModelTest, SampledIncomesLandInBrackets) {
  credit::IncomeModel model;
  rng::Random random(201);
  for (int i = 0; i < 5000; ++i) {
    double income = model.SampleIncome(2010, Race::kWhiteAlone, &random);
    EXPECT_GT(income, 0.0);
    EXPECT_LT(income, 10000.0);  // The Pareto tail stays sane.
  }
}

TEST(IncomeModelTest, SamplingFrequenciesMatchShares) {
  credit::IncomeModel model;
  rng::Random random(202);
  auto shares = model.BracketShares(2020, Race::kAsianAlone);
  std::vector<int> counts(credit::kNumIncomeBrackets, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++counts[model.SampleBracket(2020, Race::kAsianAlone, &random)];
  }
  for (size_t b = 0; b < credit::kNumIncomeBrackets; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]) / draws, shares[b], 0.01);
  }
}

TEST(IncomeModelTest, BracketLabels) {
  EXPECT_EQ(credit::BracketLabel(0), "under 15");
  EXPECT_EQ(credit::BracketLabel(1), "15-25");
  EXPECT_EQ(credit::BracketLabel(8), "over 200");
}

TEST(IncomeModelTest, YearSharesOverrideReplacesEmbeddedTable) {
  credit::IncomeModel model;
  std::vector<double> custom(credit::kNumIncomeBrackets, 0.0);
  custom[4] = 2.0;  // All mass in the 50-75 bracket (any positive scale).
  model.SetYearShares(2010, Race::kWhiteAlone, custom);
  EXPECT_EQ(model.num_overrides(), 1u);
  auto shares = model.BracketShares(2010, Race::kWhiteAlone);
  EXPECT_DOUBLE_EQ(shares[4], 1.0);  // Normalised.
  // Other cells untouched.
  EXPECT_NE(model.BracketShares(2011, Race::kWhiteAlone)[4], 1.0);
  EXPECT_NE(model.BracketShares(2010, Race::kBlackAlone)[4], 1.0);
  // Replacing the same cell does not grow the override list.
  model.SetYearShares(2010, Race::kWhiteAlone, custom);
  EXPECT_EQ(model.num_overrides(), 1u);
}

TEST(IncomeModelTest, CsvLoaderInstallsOverrides) {
  std::string path = ::testing::TempDir() + "/eqimpact_income.csv";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("year,race,s0,s1,s2,s3,s4,s5,s6,s7,s8\n", file);
  std::fputs("# comment line\n", file);
  std::fputs("2010,WHITE ALONE,10,10,10,10,10,10,10,10,20\n", file);
  std::fputs("2011,BLACK ALONE,50,50,0,0,0,0,0,0,0\n", file);
  std::fclose(file);

  credit::IncomeModel model;
  EXPECT_EQ(credit::LoadIncomeSharesCsv(path, &model), 2);
  EXPECT_EQ(model.num_overrides(), 2u);
  EXPECT_NEAR(model.BracketShares(2010, Race::kWhiteAlone)[8], 0.2, 1e-12);
  EXPECT_NEAR(model.BracketShares(2011, Race::kBlackAlone)[0], 0.5, 1e-12);
  std::remove(path.c_str());
}

TEST(IncomeModelTest, CsvLoaderRejectsMalformedRows) {
  std::string path = ::testing::TempDir() + "/eqimpact_income_bad.csv";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("2010,WHITE ALONE,1,2,3\n", file);  // Too few columns.
  std::fclose(file);
  credit::IncomeModel model;
  EXPECT_EQ(credit::LoadIncomeSharesCsv(path, &model), -1);
  std::remove(path.c_str());
}

TEST(IncomeModelTest, CsvLoaderRejectsUnknownRaceAndBadNumbers) {
  std::string path = ::testing::TempDir() + "/eqimpact_income_bad2.csv";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("2010,MARTIAN,10,10,10,10,10,10,10,10,20\n", file);
  std::fclose(file);
  credit::IncomeModel model;
  EXPECT_EQ(credit::LoadIncomeSharesCsv(path, &model), -1);
  std::remove(path.c_str());
}

TEST(IncomeModelTest, CsvLoaderMissingFileFails) {
  credit::IncomeModel model;
  EXPECT_EQ(credit::LoadIncomeSharesCsv("/no/such/file.csv", &model), -1);
}

// --- Repayment model (paper equations (10)-(11)) ---------------------------

TEST(RepaymentModelTest, SurplusShareMatchesEquation10) {
  credit::RepaymentModel model;
  // x = (z - 10 - 3.5 * 0.0216 * z) / z = 0.9244 - 10/z.
  EXPECT_NEAR(model.SurplusShare(50.0), 0.9244 - 10.0 / 50.0, 1e-12);
  EXPECT_NEAR(model.SurplusShare(20.0), 0.9244 - 0.5, 1e-12);
}

TEST(RepaymentModelTest, RepaymentProbabilityIsPhiOfFiveX) {
  credit::RepaymentModel model;
  double x = model.SurplusShare(50.0);
  EXPECT_NEAR(model.RepaymentProbability(50.0),
              rng::StandardNormalCdf(5.0 * x), 1e-12);
}

TEST(RepaymentModelTest, InsolventHouseholdNeverRepays) {
  credit::RepaymentModel model;
  // x <= 0 iff z <= 10 / 0.9244 ~ 10.82.
  EXPECT_DOUBLE_EQ(model.RepaymentProbability(10.0), 0.0);
  rng::Random random(203);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(model.SimulateRepayment(10.0, true, &random));
  }
}

TEST(RepaymentModelTest, NoOfferMeansNoRepayment) {
  credit::RepaymentModel model;
  rng::Random random(204);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(model.SimulateRepayment(100.0, false, &random));
  }
}

TEST(RepaymentModelTest, RicherHouseholdsRepayMoreOften) {
  credit::RepaymentModel model;
  EXPECT_LT(model.RepaymentProbability(13.0),
            model.RepaymentProbability(20.0));
  EXPECT_LT(model.RepaymentProbability(20.0),
            model.RepaymentProbability(60.0));
  EXPECT_GT(model.RepaymentProbability(60.0), 0.999);
}

TEST(RepaymentModelTest, ExplicitAmountOverridesMultiple) {
  credit::RepaymentModel model;
  // $50K flat mortgage for a $20K-income household: interest 1.08, so
  // x = (20 - 10 - 1.08) / 20.
  EXPECT_NEAR(model.SurplusShareForAmount(20.0, 50.0),
              (20.0 - 10.0 - 0.0216 * 50.0) / 20.0, 1e-12);
}

TEST(RepaymentModelTest, SimulationFrequencyMatchesProbability) {
  credit::RepaymentModel model;
  rng::Random random(205);
  double p = model.RepaymentProbability(16.0);
  int repaid = 0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    repaid += model.SimulateRepayment(16.0, true, &random) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(repaid) / draws, p, 0.01);
}

// --- ADR filter (paper equation (12)) ---------------------------------------

TEST(AdrFilterTest, StartsAtZero) {
  credit::AdrFilter filter({Race::kWhiteAlone, Race::kBlackAlone});
  EXPECT_DOUBLE_EQ(filter.UserAdr(0), 0.0);
  EXPECT_EQ(filter.UserOffers(0), 0);
}

TEST(AdrFilterTest, CountsDefaultsOverOffers) {
  credit::AdrFilter filter({Race::kWhiteAlone});
  filter.Update(0, true, true);    // Offer, repaid.
  filter.Update(0, true, false);   // Offer, default.
  filter.Update(0, false, false);  // No offer: ignored.
  filter.Update(0, true, true);    // Offer, repaid.
  EXPECT_NEAR(filter.UserAdr(0), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(filter.UserOffers(0), 3);
}

TEST(AdrFilterTest, DenialFreezesAdr) {
  credit::AdrFilter filter({Race::kWhiteAlone});
  filter.Update(0, true, false);
  double before = filter.UserAdr(0);
  for (int k = 0; k < 10; ++k) filter.Update(0, false, false);
  EXPECT_DOUBLE_EQ(filter.UserAdr(0), before);
}

TEST(AdrFilterTest, RaceAggregateAveragesMembers) {
  credit::AdrFilter filter(
      {Race::kWhiteAlone, Race::kWhiteAlone, Race::kBlackAlone});
  filter.Update(0, true, false);  // White user ADR 1.
  filter.Update(1, true, true);   // White user ADR 0.
  filter.Update(2, true, false);  // Black user ADR 1.
  EXPECT_DOUBLE_EQ(filter.RaceAdr(Race::kWhiteAlone), 0.5);
  EXPECT_DOUBLE_EQ(filter.RaceAdr(Race::kBlackAlone), 1.0);
  EXPECT_DOUBLE_EQ(filter.RaceAdr(Race::kAsianAlone), 0.0);  // Absent race.
  EXPECT_NEAR(filter.OverallAdr(), 2.0 / 3.0, 1e-12);
}

TEST(AdrFilterTest, PooledAggregateWeightsByOffers) {
  credit::AdrFilter filter({Race::kWhiteAlone, Race::kWhiteAlone});
  // User 0: 1 offer, 1 default. User 1: 3 offers, 0 defaults.
  filter.Update(0, true, false);
  for (int k = 0; k < 3; ++k) filter.Update(1, true, true);
  EXPECT_DOUBLE_EQ(filter.RaceAdr(Race::kWhiteAlone), 0.5);
  EXPECT_DOUBLE_EQ(filter.PooledRaceAdr(Race::kWhiteAlone), 0.25);
}

TEST(AdrFilterTest, ForgettingFactorDiscountsOldDefaults) {
  credit::AdrFilter forgetting({Race::kWhiteAlone}, 0.5);
  forgetting.Update(0, true, false);  // Old default.
  forgetting.Update(0, true, true);
  forgetting.Update(0, true, true);
  credit::AdrFilter accumulating({Race::kWhiteAlone}, 1.0);
  accumulating.Update(0, true, false);
  accumulating.Update(0, true, true);
  accumulating.Update(0, true, true);
  EXPECT_LT(forgetting.UserAdr(0), accumulating.UserAdr(0));
  EXPECT_NEAR(accumulating.UserAdr(0), 1.0 / 3.0, 1e-12);
}

TEST(AdrFilterTest, SnapshotMatchesPerUserQueries) {
  credit::AdrFilter filter({Race::kWhiteAlone, Race::kBlackAlone});
  filter.Update(0, true, false);
  filter.Update(1, true, true);
  auto snapshot = filter.UserAdrSnapshot();
  EXPECT_DOUBLE_EQ(snapshot[0], 1.0);
  EXPECT_DOUBLE_EQ(snapshot[1], 0.0);
}

// --- Population --------------------------------------------------------------

TEST(PopulationTest, RaceSharesApproximatelyMatchPaper) {
  rng::Random random(301);
  credit::Population population(20000, &random);
  double white_share =
      static_cast<double>(population.CountRace(Race::kWhiteAlone)) / 20000.0;
  EXPECT_NEAR(white_share, 0.8406, 0.02);
  double black_share =
      static_cast<double>(population.CountRace(Race::kBlackAlone)) / 20000.0;
  EXPECT_NEAR(black_share, 0.1235, 0.02);
}

TEST(PopulationTest, IncomeCodeThreshold) {
  rng::Random random(302);
  credit::Population population(100, &random);
  credit::IncomeModel model;
  population.ResampleIncomes(2010, model, &random);
  for (size_t i = 0; i < population.size(); ++i) {
    double code = population.IncomeCode(i, 15.0);
    EXPECT_EQ(code, population.income(i) >= 15.0 ? 1.0 : 0.0);
  }
}

TEST(PopulationTest, ResamplingChangesIncomes) {
  rng::Random random(303);
  credit::Population population(100, &random);
  credit::IncomeModel model;
  population.ResampleIncomes(2005, model, &random);
  double first = population.income(0);
  population.ResampleIncomes(2006, model, &random);
  // At least one income must change (almost surely all do).
  bool changed = false;
  for (size_t i = 0; i < population.size(); ++i) {
    if (population.income(i) != first) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(PopulationTest, RebuildFromRaceIdsReproducesCohort) {
  // The checkpoint layer persists only the sampled race ids; rebuilding
  // from them must reproduce the cohort exactly — races, counts and
  // subsequent income sampling — with no RNG draws of its own.
  rng::Random random(304);
  credit::Population sampled(500, &random);
  credit::Population rebuilt(sampled.race_ids());

  ASSERT_EQ(rebuilt.size(), sampled.size());
  EXPECT_EQ(rebuilt.race_ids(), sampled.race_ids());
  EXPECT_EQ(rebuilt.races(), sampled.races());
  for (Race race :
       {Race::kBlackAlone, Race::kWhiteAlone, Race::kAsianAlone}) {
    EXPECT_EQ(rebuilt.CountRace(race), sampled.CountRace(race));
  }

  // Same RNG stream from here on => bitwise-identical incomes.
  credit::IncomeModel model;
  rng::Random stream_a(77), stream_b(77);
  sampled.ResampleIncomes(2006, model, &stream_a);
  rebuilt.ResampleIncomes(2006, model, &stream_b);
  EXPECT_EQ(rebuilt.incomes(), sampled.incomes());
}

TEST(AdrFilterTest, RestoreStateReproducesUserAdrBitwise) {
  // Round-trip the raw per-user arrays through a fresh filter (the
  // checkpoint resume path) and check every derived quantity — ADR
  // ratios, offer counts, race aggregates — is bitwise-preserved and
  // that further updates continue identically on both filters.
  rng::Random random(305);
  credit::Population population(300, &random);
  credit::AdrFilter original(population.races());
  for (size_t i = 0; i < original.num_users(); ++i) {
    for (int k = 0; k < 5; ++k) {
      original.Update(i, random.Bernoulli(0.6), random.Bernoulli(0.8));
    }
  }

  credit::AdrFilter restored(population.races());
  restored.RestoreState(original.offer_weights(), original.default_weights(),
                        original.offer_counts());

  EXPECT_EQ(restored.UserAdrSnapshot(), original.UserAdrSnapshot());
  for (size_t i = 0; i < original.num_users(); ++i) {
    EXPECT_EQ(restored.UserOffers(i), original.UserOffers(i));
    EXPECT_EQ(restored.UserOfferWeight(i), original.UserOfferWeight(i));
    EXPECT_EQ(restored.UserDefaultWeight(i), original.UserDefaultWeight(i));
  }
  const credit::AdrFilter::Summary sum_orig = original.Summarize();
  const credit::AdrFilter::Summary sum_rest = restored.Summarize();
  EXPECT_EQ(sum_rest.overall_adr, sum_orig.overall_adr);
  EXPECT_EQ(sum_rest.race_adr, sum_orig.race_adr);

  rng::Random tail(306);
  for (size_t i = 0; i < original.num_users(); ++i) {
    const bool offered = tail.Bernoulli(0.5);
    const bool repaid = tail.Bernoulli(0.7);
    original.Update(i, offered, repaid);
    restored.Update(i, offered, repaid);
  }
  EXPECT_EQ(restored.UserAdrSnapshot(), original.UserAdrSnapshot());
}

// --- Lending policies ---------------------------------------------------------

TEST(LendingPolicyTest, ApproveAllSizesMortgageByIncome) {
  credit::ApproveAllPolicy policy(3.5);
  credit::LendingDecision decision =
      policy.Decide({40.0, 1.0, 0.9, true});
  EXPECT_TRUE(decision.approved);
  EXPECT_DOUBLE_EQ(decision.mortgage_amount, 140.0);
}

TEST(LendingPolicyTest, ScorecardPolicyUsesAdrAndCode) {
  ml::Scorecard card({{"History", "x ADR", -8.17}, {"Income", ">15K", 5.77}},
                     0.4);
  credit::ScorecardPolicy policy(card, 3.5);
  // Good applicant: approved with 3.5x income.
  credit::LendingDecision good = policy.Decide({50.0, 1.0, 0.1, false});
  EXPECT_TRUE(good.approved);
  EXPECT_DOUBLE_EQ(good.mortgage_amount, 175.0);
  // Poor applicant (code 0): score <= 0 < 0.4, declined.
  credit::LendingDecision poor = policy.Decide({12.0, 0.0, 0.0, false});
  EXPECT_FALSE(poor.approved);
  EXPECT_DOUBLE_EQ(poor.mortgage_amount, 0.0);
}

TEST(LendingPolicyTest, FlatLimitDeclinesPastDefaulters) {
  credit::FlatLimitPolicy policy(50.0);
  EXPECT_TRUE(policy.Decide({12.0, 0.0, 0.0, false}).approved);
  EXPECT_FALSE(policy.Decide({120.0, 1.0, 0.1, true}).approved);
  EXPECT_DOUBLE_EQ(policy.Decide({12.0, 0.0, 0.0, false}).mortgage_amount,
                   50.0);
}

TEST(LendingPolicyTest, IncomeMultipleApprovesEveryone) {
  credit::IncomeMultiplePolicy policy(3.0);
  credit::LendingDecision decision = policy.Decide({20.0, 1.0, 0.9, true});
  EXPECT_TRUE(decision.approved);
  EXPECT_DOUBLE_EQ(decision.mortgage_amount, 60.0);
}

// --- The closed loop -----------------------------------------------------------

credit::CreditLoopOptions SmallLoopOptions(uint64_t seed) {
  credit::CreditLoopOptions options;
  options.num_users = 200;
  options.seed = seed;
  return options;
}

TEST(CreditLoopTest, ResultShapes) {
  credit::CreditScoringLoop loop(SmallLoopOptions(1));
  credit::CreditLoopResult result = loop.Run();
  EXPECT_EQ(result.years.size(), 19u);  // 2002..2020.
  EXPECT_EQ(result.years.front(), 2002);
  EXPECT_EQ(result.years.back(), 2020);
  EXPECT_EQ(result.user_adr.size(), 200u);
  EXPECT_EQ(result.user_adr[0].size(), 19u);
  EXPECT_EQ(result.race_adr.size(), credit::kNumRaces);
  EXPECT_EQ(result.race_adr[0].size(), 19u);
  EXPECT_EQ(result.overall_adr.size(), 19u);
  EXPECT_EQ(result.races.size(), 200u);
}

TEST(CreditLoopTest, DeterministicInSeed) {
  credit::CreditScoringLoop a(SmallLoopOptions(7));
  credit::CreditScoringLoop b(SmallLoopOptions(7));
  credit::CreditLoopResult ra = a.Run();
  credit::CreditLoopResult rb = b.Run();
  EXPECT_EQ(ra.user_adr, rb.user_adr);
  EXPECT_EQ(ra.race_adr, rb.race_adr);
}

TEST(CreditLoopTest, DifferentSeedsDiffer) {
  credit::CreditLoopResult ra =
      credit::CreditScoringLoop(SmallLoopOptions(7)).Run();
  credit::CreditLoopResult rb =
      credit::CreditScoringLoop(SmallLoopOptions(8)).Run();
  EXPECT_NE(ra.user_adr, rb.user_adr);
}

TEST(CreditLoopTest, WarmupApprovesEveryone) {
  credit::CreditScoringLoop loop(SmallLoopOptions(2));
  credit::CreditLoopResult result = loop.Run();
  for (size_t r = 0; r < credit::kNumRaces; ++r) {
    if (result.race_approval[r].empty()) continue;
    // Every race with members is fully approved in the warm-up years.
    if (result.race_adr[r][0] > 0.0 || result.race_approval[r][0] > 0.0) {
      EXPECT_DOUBLE_EQ(result.race_approval[r][0], 1.0);
      EXPECT_DOUBLE_EQ(result.race_approval[r][1], 1.0);
    }
  }
}

TEST(CreditLoopTest, ScorecardSignsMatchTableOne) {
  credit::CreditScoringLoop loop(SmallLoopOptions(3));
  credit::CreditLoopResult result = loop.Run();
  ASSERT_FALSE(result.scorecards.empty());
  for (const credit::ScorecardSnapshot& card : result.scorecards) {
    EXPECT_LT(card.history_weight, 0.0)
        << "History factor must penalise defaults (Table I: -8.17)";
    EXPECT_GT(card.income_weight, 0.0)
        << "Income factor must reward income (Table I: +5.77)";
  }
}

TEST(CreditLoopTest, AdrSeriesStayInUnitInterval) {
  credit::CreditScoringLoop loop(SmallLoopOptions(4));
  credit::CreditLoopResult result = loop.Run();
  for (const auto& series : result.user_adr) {
    for (double adr : series) {
      EXPECT_GE(adr, 0.0);
      EXPECT_LE(adr, 1.0);
    }
  }
}

TEST(CreditLoopTest, RaceAdrSettlesToLowLevels) {
  // The paper's Figure 3: all races dwindle to a similar low ADR level.
  credit::CreditLoopOptions options = SmallLoopOptions(5);
  options.num_users = 1000;
  credit::CreditScoringLoop loop(options);
  credit::CreditLoopResult result = loop.Run();
  for (size_t r = 0; r < credit::kNumRaces; ++r) {
    double final_adr = result.race_adr[r].back();
    EXPECT_GT(final_adr, 0.0) << RaceName(static_cast<Race>(r));
    EXPECT_LT(final_adr, 0.15) << RaceName(static_cast<Race>(r));
  }
}

TEST(CreditLoopTest, InlineApprovalRuleMatchesScorecardPolicy) {
  // The batch engine hoists the scorecard into scalars and tests
  // (base + w_history * adr) + w_income * code > cutoff inline
  // (credit_loop.cc, pass 2). Pin that formula — evaluation order,
  // strict '>', and the income-multiple sizing — to ScorecardPolicy so
  // any change to Scorecard/ScorecardPolicy semantics fails here and
  // flags the engine copy.
  ml::Scorecard card(
      {{"History", "x ADR", -8.17}, {"Income", ">15K", 5.77}}, 0.4, 0.25);
  credit::ScorecardPolicy policy(card, 3.5);
  const double base = card.base_points();
  const double w_history = card.factor(0).score;
  const double w_income = card.factor(1).score;
  for (double adr = 0.0; adr <= 1.0; adr += 0.01) {
    for (double code : {0.0, 1.0}) {
      for (double income : {12.0, 50.0}) {
        const bool inline_approved =
            (base + w_history * adr) + w_income * code > card.cutoff();
        credit::LendingDecision decision =
            policy.Decide({income, code, adr, false});
        ASSERT_EQ(decision.approved, inline_approved)
            << "adr=" << adr << " code=" << code;
        if (decision.approved) {
          EXPECT_DOUBLE_EQ(decision.mortgage_amount, 3.5 * income);
        } else {
          EXPECT_DOUBLE_EQ(decision.mortgage_amount, 0.0);
        }
      }
    }
  }
  // Boundary: a score exactly at the cut-off is declined (strict '>').
  ml::Scorecard flat({{"History", "x ADR", 0.0}, {"Income", ">15K", 0.0}},
                     0.0, 0.0);
  credit::ScorecardPolicy flat_policy(flat, 3.5);
  EXPECT_FALSE(flat_policy.Decide({50.0, 1.0, 0.5, false}).approved);
}

TEST(CreditLoopTest, StreamingModeKeepsNoPerUserSeries) {
  // keep_user_adr = false is the memory-bounded large-cohort mode: the
  // aggregate series are unchanged, but no per-user series exists.
  credit::CreditLoopOptions options = SmallLoopOptions(9);
  credit::CreditLoopResult full = credit::CreditScoringLoop(options).Run();
  options.keep_user_adr = false;
  credit::CreditLoopResult streaming =
      credit::CreditScoringLoop(options).Run();
  EXPECT_TRUE(streaming.user_adr.empty());
  EXPECT_EQ(streaming.race_adr, full.race_adr);
  EXPECT_EQ(streaming.overall_adr, full.overall_adr);
  EXPECT_EQ(streaming.races, full.races);
}

TEST(CreditLoopTest, YearObserverSeesEveryCrossSection) {
  // The observer receives exactly the per-year columns of user_adr, so a
  // streaming consumer loses nothing against the materialized series.
  credit::CreditLoopOptions options = SmallLoopOptions(10);
  credit::CreditLoopResult reference =
      credit::CreditScoringLoop(options).Run();

  options.keep_user_adr = false;
  size_t calls = 0;
  bool all_match = true;
  credit::CreditScoringLoop(options).Run(
      [&](const credit::YearSnapshot& snapshot) {
        EXPECT_EQ(snapshot.user_adr.size(), options.num_users);
        EXPECT_EQ(snapshot.year,
                  reference.years[snapshot.step]);
        for (size_t i = 0; i < snapshot.user_adr.size(); ++i) {
          if (snapshot.user_adr[i] !=
              reference.user_adr[i][snapshot.step]) {
            all_match = false;
          }
        }
        ++calls;
      });
  EXPECT_EQ(calls, reference.years.size());
  EXPECT_TRUE(all_match);
}

TEST(CreditLoopTest, ChunkSizeIsPartOfTheStreamLayout) {
  // users_per_chunk relayouts the RNG sub-streams: it may change the
  // realisation (like a new seed) but never the validity of the run.
  credit::CreditLoopOptions options = SmallLoopOptions(12);
  options.users_per_chunk = 64;
  credit::CreditLoopResult chunked =
      credit::CreditScoringLoop(options).Run();
  EXPECT_EQ(chunked.user_adr.size(), options.num_users);
  for (const auto& series : chunked.user_adr) {
    for (double adr : series) {
      EXPECT_GE(adr, 0.0);
      EXPECT_LE(adr, 1.0);
    }
  }
}

TEST(CreditLoopTest, ForgettingFilterAblationRuns) {
  credit::CreditLoopOptions options = SmallLoopOptions(6);
  options.forgetting_factor = 0.8;
  credit::CreditLoopResult result =
      credit::CreditScoringLoop(options).Run();
  EXPECT_EQ(result.user_adr.size(), options.num_users);
}

TEST(CreditLoopTest, ExplicitHistoryBinWidthRunsAndStaysDeterministic) {
  // Forcing a coarse ADR bin width on the grouped history still yields a
  // working, seed-deterministic loop (the surrogate ADR is within
  // width / 2 of the raw one).
  credit::CreditLoopOptions options = SmallLoopOptions(13);
  options.history_adr_bin_width = 1.0 / 64.0;
  credit::CreditLoopResult a = credit::CreditScoringLoop(options).Run();
  credit::CreditLoopResult b = credit::CreditScoringLoop(options).Run();
  EXPECT_EQ(a.user_adr, b.user_adr);
  ASSERT_FALSE(a.scorecards.empty());
  // A bin this coarse can distort the weak History coefficient (most
  // ADRs sit in the lowest bin at 200 users), so only the strong Income
  // sign is asserted alongside finiteness.
  for (const credit::ScorecardSnapshot& card : a.scorecards) {
    EXPECT_TRUE(std::isfinite(card.history_weight));
    EXPECT_GT(card.income_weight, 0.0);
  }
}

TEST(CreditLoopTest, ScorecardsAreThreadCountInvariantWithParallelFit) {
  // The trainer's chunked reduction runs on the loop's worker pool, so
  // the fitted scorecards — and with them every downstream decision —
  // must be bitwise-identical at every thread count even with chunk
  // sizes small enough that the fit genuinely fans out.
  credit::CreditLoopOptions options = SmallLoopOptions(14);
  options.num_users = 400;
  options.users_per_chunk = 64;
  options.logistic.rows_per_chunk = 16;

  options.num_threads = 1;
  credit::CreditLoopResult sequential =
      credit::CreditScoringLoop(options).Run();
  for (size_t threads : {2u, 8u}) {
    options.num_threads = threads;
    credit::CreditLoopResult parallel =
        credit::CreditScoringLoop(options).Run();
    ASSERT_EQ(parallel.scorecards.size(), sequential.scorecards.size());
    for (size_t s = 0; s < sequential.scorecards.size(); ++s) {
      EXPECT_EQ(parallel.scorecards[s].history_weight,
                sequential.scorecards[s].history_weight)
          << "threads=" << threads << " snapshot " << s;
      EXPECT_EQ(parallel.scorecards[s].income_weight,
                sequential.scorecards[s].income_weight);
    }
    EXPECT_EQ(parallel.user_adr, sequential.user_adr);
    EXPECT_EQ(parallel.overall_adr, sequential.overall_adr);
  }
}

TEST(CreditLoopTest, LastYearOnlyHistoryIsRebuiltEachYear) {
  // The single-year ablation clears the grouped history every year; the
  // loop must still fit (both classes re-observed yearly) and remain
  // seed-deterministic.
  credit::CreditLoopOptions options = SmallLoopOptions(15);
  options.accumulate_history = false;
  credit::CreditLoopResult a = credit::CreditScoringLoop(options).Run();
  credit::CreditLoopResult b = credit::CreditScoringLoop(options).Run();
  EXPECT_FALSE(a.scorecards.empty());
  EXPECT_EQ(a.user_adr, b.user_adr);
  EXPECT_EQ(a.overall_adr, b.overall_adr);
}

TEST(CreditLoopTest, LastYearOnlyTrainingAblationRuns) {
  credit::CreditLoopOptions options = SmallLoopOptions(7);
  options.accumulate_history = false;
  credit::CreditLoopResult result =
      credit::CreditScoringLoop(options).Run();
  EXPECT_FALSE(result.scorecards.empty());
}

// --- Parameterized sweeps -------------------------------------------------------

class CutoffSweep : public ::testing::TestWithParam<double> {};

TEST_P(CutoffSweep, LoopRunsAndKeepsAdrBoundedForAnyCutoff) {
  credit::CreditLoopOptions options = SmallLoopOptions(11);
  options.cutoff = GetParam();
  credit::CreditLoopResult result =
      credit::CreditScoringLoop(options).Run();
  for (size_t r = 0; r < credit::kNumRaces; ++r) {
    EXPECT_LE(result.race_adr[r].back(), 1.0);
    EXPECT_GE(result.race_adr[r].back(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, CutoffSweep,
                         ::testing::Values(-1.0, 0.0, 0.4, 1.0, 3.0));

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, FinalOverallAdrIsStableAcrossSeeds) {
  // Equal impact across trials: the long-run overall ADR level should not
  // vary wildly with the randomness (initial conditions).
  credit::CreditLoopOptions options = SmallLoopOptions(GetParam());
  options.num_users = 500;
  credit::CreditLoopResult result =
      credit::CreditScoringLoop(options).Run();
  EXPECT_GT(result.overall_adr.back(), 0.0);
  EXPECT_LT(result.overall_adr.back(), 0.12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(100, 200, 300, 400, 500));

}  // namespace
}  // namespace eqimpact
