// Tests of the SIMD kernel sublayer (runtime/simd.h, runtime/kernels.h,
// rng::Pcg32::FillUniform) and of its determinism contract: every vector
// lane is bit-for-bit the scalar reference on every input — NaN
// payloads, infinities, subnormals, signed zeros — and at every tail
// length, so simulation digests are invariant across backends and
// across the sweep driver's cross-point thread counts.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "base/fnv1a.h"
#include "base/simd_scalar.h"
#include "credit/credit_loop.h"
#include "credit/income_model.h"
#include "credit/repayment_model.h"
#include "gtest/gtest.h"
#include "ml/logistic_regression.h"
#include "rng/normal.h"
#include "rng/pcg32.h"
#include "rng/random.h"
#include "runtime/kernels.h"
#include "runtime/simd.h"
#include "sim/experiment.h"
#include "sim/scenario_registry.h"
#include "sim/sweep.h"
#include "stats/adr_accumulator.h"

namespace eqimpact {
namespace {

namespace kernels = runtime::kernels;

// Restores the force-scalar toggle even when a test fails mid-way.
class ScopedForceScalar {
 public:
  ScopedForceScalar() { base::SetSimdForceScalarForTesting(true); }
  ~ScopedForceScalar() { base::SetSimdForceScalarForTesting(false); }
};

// Adversarial doubles: every IEEE special the kernels' compares and
// divides could mishandle, plus hot-path-shaped ordinary values.
std::vector<double> AdversarialValues() {
  const double inf = std::numeric_limits<double>::infinity();
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  return {0.0,
          -0.0,
          1.0,
          -1.0,
          15.0,
          14.999999999999998,
          42.5,
          -42.5,
          1e-300,
          -1e-300,
          std::numeric_limits<double>::denorm_min(),
          -std::numeric_limits<double>::denorm_min(),
          std::numeric_limits<double>::min(),
          std::numeric_limits<double>::max(),
          1e300,
          -1e300,
          inf,
          -inf,
          qnan,
          -qnan,
          0.4,
          0.6,
          3.5,
          250.0};
}

// A length-n input cycling through the adversarial values, phase-shifted
// so paired arrays do not align.
std::vector<double> AdversarialInput(size_t n, size_t phase) {
  const std::vector<double> values = AdversarialValues();
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = values[(i + phase) % values.size()];
  }
  return out;
}

// Bitwise comparison that treats equal NaN payloads as equal (memcmp).
::testing::AssertionResult BitwiseEqual(const std::vector<double>& a,
                                        const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "lane " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

// Every size from empty through several multiples of the widest lane
// count (4), so every tail remainder of every backend width is hit.
std::vector<size_t> TailSizes() {
  std::vector<size_t> sizes;
  for (size_t n = 0; n <= 18; ++n) sizes.push_back(n);
  sizes.push_back(63);
  sizes.push_back(64);
  sizes.push_back(65);
  sizes.push_back(1000);
  return sizes;
}

TEST(SimdBackendTest, ActiveBackendRespectsForceScalar) {
  EXPECT_LE(runtime::simd::LaneWidth(runtime::simd::ActiveBackend()),
            runtime::simd::LaneWidth(runtime::simd::CompiledBackend()));
  {
    ScopedForceScalar scalar;
    EXPECT_EQ(runtime::simd::ActiveBackend(),
              runtime::simd::Backend::kScalar);
  }
  EXPECT_STREQ(runtime::simd::BackendName(runtime::simd::Backend::kScalar),
               "scalar");
  EXPECT_EQ(runtime::simd::LaneWidth(runtime::simd::Backend::kScalar), 1u);
}

TEST(SimdKernelTest, IncomeCodeBitwiseEqualOnAdversarialInputs) {
  for (size_t n : TailSizes()) {
    const std::vector<double> income = AdversarialInput(n, 0);
    std::vector<double> scalar(n, -1.0), vector(n, -2.0);
    kernels::IncomeCodeScalar(income.data(), n, 15.0, scalar.data());
    kernels::IncomeCode(income.data(), n, 15.0, vector.data());
    EXPECT_TRUE(BitwiseEqual(scalar, vector)) << "n=" << n;
  }
}

TEST(SimdKernelTest, ScoreSweepBitwiseEqualOnAdversarialInputs) {
  kernels::ScoreParams params;
  params.code_threshold = 15.0;
  params.base_points = 0.3;
  params.adr_weight = -8.17;
  params.code_weight = 5.77;
  params.cutoff = 0.4;
  for (size_t n : TailSizes()) {
    const std::vector<double> income = AdversarialInput(n, 0);
    const std::vector<double> adr = AdversarialInput(n, 7);
    std::vector<double> code_s(n, -1.0), code_v(n, -2.0);
    std::vector<unsigned char> approved_s(n, 9), approved_v(n, 8);
    kernels::ScoreSweepScalar(income.data(), adr.data(), n, params,
                              code_s.data(), approved_s.data());
    kernels::ScoreSweep(income.data(), adr.data(), n, params, code_v.data(),
                        approved_v.data());
    EXPECT_TRUE(BitwiseEqual(code_s, code_v)) << "n=" << n;
    EXPECT_EQ(approved_s, approved_v) << "n=" << n;
  }
  // NaN scores must decline — the legacy !(score > cutoff) semantics.
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  double code = 0.0;
  unsigned char approved = 1;
  const double income = 20.0;
  kernels::ScoreSweep(&income, &qnan, 1, params, &code, &approved);
  EXPECT_EQ(approved, 0);
}

TEST(SimdKernelTest, SurplusShareBitwiseEqualOnAdversarialInputs) {
  for (size_t n : TailSizes()) {
    const std::vector<double> income = AdversarialInput(n, 3);
    std::vector<double> scalar(n), vector(n);
    kernels::SurplusShareScalar(income.data(), n, 3.5, 10.0, 0.0216,
                                scalar.data());
    kernels::SurplusShare(income.data(), n, 3.5, 10.0, 0.0216,
                          vector.data());
    EXPECT_TRUE(BitwiseEqual(scalar, vector)) << "n=" << n;
  }
}

TEST(SimdKernelTest, GuardedRatioBitwiseEqualOnAdversarialInputs) {
  for (size_t n : TailSizes()) {
    const std::vector<double> num = AdversarialInput(n, 5);
    const std::vector<double> den = AdversarialInput(n, 11);
    std::vector<double> scalar(n), vector(n);
    kernels::GuardedRatioScalar(num.data(), den.data(), n, scalar.data());
    kernels::GuardedRatio(num.data(), den.data(), n, vector.data());
    EXPECT_TRUE(BitwiseEqual(scalar, vector)) << "n=" << n;
  }
}

TEST(SimdKernelTest, SigmoidBatchBitwiseEqualOnAdversarialInputs) {
  for (size_t n : TailSizes()) {
    const std::vector<double> t = AdversarialInput(n, 9);
    std::vector<double> scalar(n), vector(n);
    kernels::SigmoidBatchScalar(t.data(), n, scalar.data());
    kernels::SigmoidBatch(t.data(), n, vector.data());
    EXPECT_TRUE(BitwiseEqual(scalar, vector)) << "n=" << n;
  }
}

TEST(SimdKernelTest, SigmoidBatchScalarMatchesMlSigmoid) {
  // The scalar reference must be ml::Sigmoid exactly, finite and not.
  const std::vector<double> t = AdversarialInput(64, 2);
  std::vector<double> batch(t.size());
  kernels::SigmoidBatchScalar(t.data(), t.size(), batch.data());
  for (size_t i = 0; i < t.size(); ++i) {
    const double direct = ml::Sigmoid(t[i]);
    EXPECT_EQ(std::memcmp(&direct, &batch[i], sizeof(double)), 0)
        << "t=" << t[i];
  }
}

TEST(SimdKernelTest, LinearPredictor2BitwiseEqualOnAdversarialInputs) {
  for (size_t n : TailSizes()) {
    const std::vector<double> rows = AdversarialInput(2 * n, 1);
    for (bool add_bias : {false, true}) {
      std::vector<double> scalar(n), vector(n);
      kernels::LinearPredictor2Scalar(rows.data(), n, -8.17, 5.77, 0.3,
                                      add_bias, scalar.data());
      kernels::LinearPredictor2(rows.data(), n, -8.17, 5.77, 0.3, add_bias,
                                vector.data());
      EXPECT_TRUE(BitwiseEqual(scalar, vector))
          << "n=" << n << " bias=" << add_bias;
    }
  }
  // Signed-zero products: RowDot's initial 0.0 turns -0.0 into +0.0.
  const std::vector<double> rows = {-0.0, -0.0};
  double scalar = -1.0, vector = -1.0;
  kernels::LinearPredictor2Scalar(rows.data(), 1, 1.0, 1.0, 0.0, false,
                                  &scalar);
  kernels::LinearPredictor2(rows.data(), 1, 1.0, 1.0, 0.0, false, &vector);
  EXPECT_EQ(std::memcmp(&scalar, &vector, sizeof(double)), 0);
  EXPECT_FALSE(std::signbit(scalar));
}

TEST(SimdKernelTest, ForceScalarTogglePinsDispatchToReference) {
  // Under the toggle the dispatched entry must take the scalar path —
  // trivially bitwise-equal — regardless of backend.
  ScopedForceScalar scalar_only;
  const size_t n = 37;
  const std::vector<double> income = AdversarialInput(n, 0);
  std::vector<double> a(n), b(n);
  kernels::IncomeCodeScalar(income.data(), n, 15.0, a.data());
  kernels::IncomeCode(income.data(), n, 15.0, b.data());
  EXPECT_TRUE(BitwiseEqual(a, b));
}

TEST(SimdFillUniformTest, MatchesSequentialDrawsForAllSizes) {
  for (size_t n = 0; n <= 70; ++n) {
    rng::Pcg32 batch_gen(123, 77);
    rng::Pcg32 seq_gen(123, 77);
    std::vector<double> batch(n + 1, -1.0), sequential(n + 1, -1.0);
    batch_gen.FillUniform(batch.data(), n);
    for (size_t i = 0; i < n; ++i) {
      sequential[i] =
          static_cast<double>(seq_gen.Next64() >> 11) * 0x1.0p-53;
    }
    EXPECT_TRUE(BitwiseEqual(batch, sequential)) << "n=" << n;
    // The generator state must land exactly where 2n Next() calls put
    // it, so batch and sequential draws interleave freely.
    for (int k = 0; k < 5; ++k) {
      EXPECT_EQ(batch_gen.Next(), seq_gen.Next()) << "n=" << n;
    }
  }
}

TEST(SimdFillUniformTest, LargeFillAndRandomWrapperMatch) {
  rng::Random batch_random(2026);
  rng::Random seq_random(2026);
  std::vector<double> batch(4097), sequential(4097);
  batch_random.FillUniformDouble(batch.data(), batch.size());
  for (double& value : sequential) value = seq_random.UniformDouble();
  EXPECT_TRUE(BitwiseEqual(batch, sequential));
  EXPECT_EQ(batch_random.UniformDouble(), seq_random.UniformDouble());
}

TEST(SimdFillUniformTest, AdvanceStateMatchesStepping) {
  const uint64_t inc = 0x9E3779B97F4A7C15ULL | 1ULL;
  uint64_t state = 0x0123456789ABCDEFULL;
  uint64_t stepped = state;
  for (uint64_t steps = 0; steps <= 40; ++steps) {
    EXPECT_EQ(rng::Pcg32::AdvanceState(state, inc, steps), stepped)
        << "steps=" << steps;
    stepped = stepped * 6364136223846793005ULL + inc;
  }
}

TEST(SimdFillUniformTest, ForceScalarProducesTheSameStream) {
  std::vector<double> vector_fill(257), scalar_fill(257);
  {
    rng::Pcg32 gen(9, 5);
    gen.FillUniform(vector_fill.data(), vector_fill.size());
  }
  {
    ScopedForceScalar scalar_only;
    rng::Pcg32 gen(9, 5);
    gen.FillUniform(scalar_fill.data(), scalar_fill.size());
  }
  EXPECT_TRUE(BitwiseEqual(vector_fill, scalar_fill));
}

TEST(SimdIncomeSamplerTest, SampleFromUniformsMatchesSample) {
  const credit::IncomeModel model;
  for (int year : {2002, 2011, 2020}) {
    const credit::YearIncomeSampler sampler(model, year);
    for (size_t r = 0; r < credit::kNumRaces; ++r) {
      const credit::Race race = static_cast<credit::Race>(r);
      rng::Random direct(17 * (r + 1) + year);
      rng::Random feeder(17 * (r + 1) + year);
      for (int draw = 0; draw < 200; ++draw) {
        const double expected = sampler.Sample(race, &direct);
        const double u_bracket = feeder.UniformDouble();
        const double u_value = feeder.UniformDouble();
        const double actual =
            sampler.SampleFromUniforms(race, u_bracket, u_value);
        EXPECT_EQ(std::memcmp(&expected, &actual, sizeof(double)), 0)
            << "year=" << year << " race=" << r << " draw=" << draw;
      }
    }
  }
}

TEST(SimdRepaymentTest, ProbabilityBatchMatchesScalarModel) {
  const credit::RepaymentModel model;
  std::vector<double> incomes;
  rng::Random random(5);
  for (int i = 0; i < 999; ++i) {
    incomes.push_back(random.UniformDouble(0.5, 260.0));
  }
  std::vector<double> batch(incomes.size());
  std::vector<double> shares(incomes.size());
  model.ProbabilityBatch(incomes.data(), incomes.size(), shares.data(),
                         batch.data());
  for (size_t i = 0; i < incomes.size(); ++i) {
    const double expected = model.RepaymentProbability(incomes[i]);
    EXPECT_EQ(std::memcmp(&expected, &batch[i], sizeof(double)), 0)
        << "income=" << incomes[i];
  }
}

// Adversarial inputs specific to the pinned normal CDF: the Cody
// rational's branch switch points (0.46875 and 4.0 on the erfc argument
// scale, so times sqrt 2 on the x scale), the saturation clamp and its
// neighbourhood, deep-tail values, subnormals, and the IEEE specials.
std::vector<double> PhiAdversarialValues() {
  namespace phi = base::phi;
  const double inf = std::numeric_limits<double>::infinity();
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  return {0.0,
          -0.0,
          1.0,
          -1.0,
          0.5,
          -2.5,
          phi::kErfSwitch * phi::kSqrt2,
          -phi::kErfSwitch * phi::kSqrt2,
          std::nextafter(phi::kErfSwitch * phi::kSqrt2, 100.0),
          phi::kTailSwitch * phi::kSqrt2,
          -phi::kTailSwitch * phi::kSqrt2,
          std::nextafter(-phi::kTailSwitch * phi::kSqrt2, -100.0),
          -25.715539999999997,  // The measured max-ulp point.
          phi::kClamp,
          -phi::kClamp,
          std::nextafter(phi::kClamp, 100.0),
          std::nextafter(-phi::kClamp, -100.0),
          100.0,
          -100.0,
          1e-300,
          -1e-300,
          std::numeric_limits<double>::denorm_min(),
          -std::numeric_limits<double>::denorm_min(),
          1e300,
          -1e300,
          inf,
          -inf,
          qnan,
          -qnan};
}

TEST(SimdNormalCdfTest, BatchBitwiseEqualOnAdversarialInputsAllTailSizes) {
  const std::vector<double> values = PhiAdversarialValues();
  for (size_t n : TailSizes()) {
    for (size_t phase = 0; phase < 3; ++phase) {
      std::vector<double> x(n);
      for (size_t i = 0; i < n; ++i) {
        x[i] = values[(i + 7 * phase) % values.size()];
      }
      std::vector<double> scalar(n, -1.0);
      std::vector<double> vectored(n, -2.0);
      kernels::NormalCdfBatchScalar(x.data(), n, scalar.data());
      kernels::NormalCdfBatch(x.data(), n, vectored.data());
      EXPECT_TRUE(BitwiseEqual(scalar, vectored))
          << "n=" << n << " phase=" << phase;
    }
  }
}

TEST(SimdNormalCdfTest, BatchAllowsInPlaceAndForceScalarDispatch) {
  const std::vector<double> x = PhiAdversarialValues();
  std::vector<double> expected(x.size());
  kernels::NormalCdfBatchScalar(x.data(), x.size(), expected.data());
  // Aliased out == x (the repayment path evaluates in place).
  std::vector<double> in_place = x;
  kernels::NormalCdfBatch(in_place.data(), in_place.size(), in_place.data());
  EXPECT_TRUE(BitwiseEqual(expected, in_place));
  // The force-scalar toggle pins the dispatch to the reference.
  ScopedForceScalar scalar_only;
  std::vector<double> forced(x.size(), -3.0);
  kernels::NormalCdfBatch(x.data(), x.size(), forced.data());
  EXPECT_TRUE(BitwiseEqual(expected, forced));
}

// Ulp distance between two Phi outputs; both are in [0, 1], where the
// IEEE bit patterns are non-negative and ordered, so the distance is
// the plain integer gap.
int64_t PhiUlpDistance(double a, double b) {
  int64_t ia = 0, ib = 0;
  std::memcpy(&ia, &a, sizeof(a));
  std::memcpy(&ib, &b, sizeof(b));
  return ia > ib ? ia - ib : ib - ia;
}

TEST(SimdNormalCdfTest, MaxUlpVsLibmWithinDocumentedBound) {
  namespace phi = base::phi;
  int64_t max_ulp = 0;
  double worst = 0.0;
  // Dense sweep of the clamp span plus a finer pass over the hot range;
  // the documented bound covers every x in [-kClamp, kClamp].
  const auto check = [&max_ulp, &worst](double x) {
    const double pinned = base::NormalCdfScalar(x);
    const double libm = 0.5 * std::erfc(-x / phi::kSqrt2);
    const int64_t ulp = PhiUlpDistance(pinned, libm);
    if (ulp > max_ulp) {
      max_ulp = ulp;
      worst = x;
    }
  };
  for (double x = -phi::kClamp; x <= phi::kClamp; x += 1e-3) check(x);
  for (double x = -8.0; x <= 8.0; x += 1e-5) check(x);
  EXPECT_LE(max_ulp, phi::kMaxUlpVsLibm) << "worst x=" << worst;
}

TEST(SimdNormalCdfTest, SpecialValuesPinned) {
  namespace phi = base::phi;
  EXPECT_EQ(base::NormalCdfScalar(0.0), 0.5);
  EXPECT_EQ(base::NormalCdfScalar(-0.0), 0.5);
  // Exact saturation outside the clamp (true Phi is < 1e-307 there).
  EXPECT_EQ(base::NormalCdfScalar(phi::kClamp + 1e-9), 1.0);
  EXPECT_EQ(base::NormalCdfScalar(-phi::kClamp - 1e-9), 0.0);
  EXPECT_EQ(base::NormalCdfScalar(std::numeric_limits<double>::infinity()),
            1.0);
  EXPECT_EQ(base::NormalCdfScalar(-std::numeric_limits<double>::infinity()),
            0.0);
  // NaN inputs return the input bits unchanged, payload included.
  uint64_t payload_bits = 0x7ff8000000001234ull;
  double payload_nan = 0.0;
  std::memcpy(&payload_nan, &payload_bits, sizeof(payload_nan));
  const double out = base::NormalCdfScalar(payload_nan);
  EXPECT_EQ(std::memcmp(&out, &payload_nan, sizeof(out)), 0);
  // Monotone non-decreasing across a coarse grid (sanity on the pieces).
  double previous = 0.0;
  for (double x = -37.0; x <= 37.0; x += 0.25) {
    const double value = base::NormalCdfScalar(x);
    EXPECT_GE(value, previous) << "x=" << x;
    previous = value;
  }
}

TEST(SimdNormalCdfTest, StandardNormalCdfEntriesAreTheReference) {
  const std::vector<double> x = PhiAdversarialValues();
  std::vector<double> batch(x.size(), -1.0);
  rng::StandardNormalCdfBatch(x.data(), x.size(), batch.data());
  for (size_t i = 0; i < x.size(); ++i) {
    const double scalar_entry = rng::StandardNormalCdf(x[i]);
    const double reference = base::NormalCdfScalar(x[i]);
    EXPECT_EQ(std::memcmp(&scalar_entry, &reference, sizeof(double)), 0)
        << "x=" << x[i];
    EXPECT_EQ(std::memcmp(&batch[i], &reference, sizeof(double)), 0)
        << "x=" << x[i];
  }
}

uint64_t CreditTrialDigest() {
  credit::CreditLoopOptions options;
  options.num_users = 400;
  options.seed = 11;
  options.keep_user_adr = false;
  const size_t num_years =
      static_cast<size_t>(options.last_year - options.first_year) + 1;
  stats::AdrAccumulator adr(credit::kNumRaces, num_years, 32);
  credit::CreditScoringLoop loop(options);
  const credit::CreditLoopResult result =
      loop.Run([&adr](const credit::YearSnapshot& snapshot) {
        adr.AddCrossSection(snapshot.step, snapshot.user_adr,
                            snapshot.race_ids);
      });
  base::Fnv1a digest;
  digest.MixSeries(result.overall_adr);
  for (const auto& series : result.race_adr) digest.MixSeries(series);
  for (const auto& series : result.race_approval) digest.MixSeries(series);
  for (const auto& snapshot : result.scorecards) {
    digest.MixDouble(snapshot.history_weight);
    digest.MixDouble(snapshot.income_weight);
    digest.MixDouble(snapshot.intercept);
  }
  sim::MixAccumulator(&digest, adr);
  return digest.hash();
}

TEST(SimdDigestTest, CreditLoopDigestInvariantUnderForceScalar) {
  const uint64_t vector_digest = CreditTrialDigest();
  uint64_t scalar_digest = 0;
  {
    ScopedForceScalar scalar_only;
    scalar_digest = CreditTrialDigest();
  }
  EXPECT_EQ(vector_digest, scalar_digest);
}

sim::SweepOptions SmallCreditSweep() {
  sim::SweepOptions options;
  options.experiment.num_trials = 2;
  options.experiment.master_seed = 3;
  options.parameters = {{"num_users", {60.0}},
                        {"cutoff", {0.3, 0.4, 0.5}},
                        {"forgetting_factor", {1.0, 0.7}}};
  return options;
}

TEST(SimdSweepTest, PointParallelSweepBitwiseIdenticalAcrossThreadCounts) {
  sim::SweepOptions options = SmallCreditSweep();
  const sim::ScenarioFactory factory = sim::GetScenarioFactory("credit");
  const sim::SweepResult reference = RunSweep(factory, options);
  ASSERT_EQ(reference.points.size(), 6u);
  const uint64_t reference_digest = SweepDigest(reference);
  for (size_t point_threads : {size_t{2}, size_t{8}}) {
    options.num_point_threads = point_threads;
    const sim::SweepResult result = RunSweep(factory, options);
    EXPECT_EQ(SweepDigest(result), reference_digest)
        << "point_threads=" << point_threads;
    // Grid order must be preserved, not just the digest.
    for (size_t p = 0; p < reference.points.size(); ++p) {
      EXPECT_EQ(result.points[p].values, reference.points[p].values);
      EXPECT_EQ(result.points[p].digest, reference.points[p].digest);
    }
    EXPECT_EQ(result.scenario, reference.scenario);
    EXPECT_EQ(result.metric_names, reference.metric_names);
  }
}

TEST(SimdSweepTest, PointParallelSweepInvariantUnderForceScalar) {
  sim::SweepOptions options = SmallCreditSweep();
  options.num_point_threads = 4;
  const sim::ScenarioFactory factory = sim::GetScenarioFactory("credit");
  const uint64_t vector_digest = SweepDigest(RunSweep(factory, options));
  uint64_t scalar_digest = 0;
  {
    ScopedForceScalar scalar_only;
    scalar_digest = SweepDigest(RunSweep(factory, options));
  }
  EXPECT_EQ(vector_digest, scalar_digest);
}

TEST(SimdSweepTest, KeepExperimentsAndNestedBudgetsUnderPointParallelism) {
  sim::SweepOptions options = SmallCreditSweep();
  options.num_point_threads = 3;
  options.keep_experiments = true;
  options.experiment.trial_threads = 2;
  const sim::SweepResult result =
      RunSweep(sim::GetScenarioFactory("credit"), options);
  ASSERT_EQ(result.experiments.size(), result.points.size());
  for (size_t p = 0; p < result.points.size(); ++p) {
    EXPECT_EQ(sim::ExperimentDigest(result.experiments[p]),
              result.points[p].digest);
  }
}

}  // namespace
}  // namespace eqimpact
