// Unit tests for the core module: the closed-loop engine, the equal-
// treatment and equal-impact auditors, comparison functions / incremental
// ISS, and the ergodicity certificates.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/auditors.h"
#include "core/closed_loop.h"
#include "core/comparison_functions.h"
#include "core/ergodicity.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "markov/affine_ifs.h"
#include "markov/affine_map.h"
#include "markov/markov_chain.h"
#include "rng/random.h"

namespace eqimpact {
namespace {

using linalg::Matrix;
using linalg::Vector;

// A trivially simple loop: the AI system broadcasts the filtered mean,
// users respond Bernoulli(p) with p = clamp(output), the filter averages.
class ConstantAiSystem : public core::AiSystemInterface {
 public:
  explicit ConstantAiSystem(double value) : value_(value) {}
  Vector Produce(const Vector&, int64_t) override { return Vector{value_}; }

 private:
  double value_;
};

class BernoulliUsers : public core::UserEnsembleInterface {
 public:
  explicit BernoulliUsers(size_t n) : n_(n) {}
  size_t num_users() const override { return n_; }
  Vector Respond(const Vector& output, int64_t, rng::Random* random) override {
    double p = std::clamp(output[0], 0.0, 1.0);
    Vector actions(n_);
    for (size_t i = 0; i < n_; ++i) {
      actions[i] = random->Bernoulli(p) ? 1.0 : 0.0;
    }
    return actions;
  }

 private:
  size_t n_;
};

class MeanFilter : public core::FilterInterface {
 public:
  Vector InitialState() const override { return Vector{0.0}; }
  Vector Update(const Vector& actions, int64_t) override {
    return Vector{actions.Mean()};
  }
};

TEST(ClosedLoopTest, TraceShapes) {
  ConstantAiSystem ai(0.5);
  BernoulliUsers users(10);
  MeanFilter filter;
  core::ClosedLoop loop(&ai, &users, &filter);
  rng::Random random(1);
  core::ClosedLoopTrace trace = loop.Run(20, &random);
  EXPECT_EQ(trace.outputs.size(), 20u);
  EXPECT_EQ(trace.filtered.size(), 20u);
  EXPECT_EQ(trace.user_actions.size(), 10u);
  EXPECT_EQ(trace.user_actions[0].size(), 20u);
  EXPECT_EQ(trace.aggregate_actions.size(), 20u);
}

TEST(ClosedLoopTest, AggregateIsSumOfUserActions) {
  ConstantAiSystem ai(0.7);
  BernoulliUsers users(5);
  MeanFilter filter;
  core::ClosedLoop loop(&ai, &users, &filter);
  rng::Random random(2);
  core::ClosedLoopTrace trace = loop.Run(50, &random);
  for (size_t k = 0; k < 50; ++k) {
    double sum = 0.0;
    for (size_t i = 0; i < 5; ++i) sum += trace.user_actions[i][k];
    EXPECT_DOUBLE_EQ(trace.aggregate_actions[k], sum);
  }
}

TEST(ClosedLoopTest, FilteredSignalLagsActionsByOneStep) {
  ConstantAiSystem ai(1.0);  // Everyone acts 1.
  BernoulliUsers users(4);
  MeanFilter filter;
  core::ClosedLoop loop(&ai, &users, &filter);
  rng::Random random(3);
  core::ClosedLoopTrace trace = loop.Run(5, &random);
  EXPECT_DOUBLE_EQ(trace.filtered[0][0], 0.0);  // Initial filter state.
  for (size_t k = 1; k < 5; ++k) {
    EXPECT_DOUBLE_EQ(trace.filtered[k][0], 1.0);  // Mean of all-ones.
  }
}

// --- Equal-impact auditor ----------------------------------------------------

TEST(EqualImpactAuditTest, IidBernoulliUsersPass) {
  rng::Random random(11);
  std::vector<std::vector<double>> actions(20);
  for (auto& series : actions) {
    for (int k = 0; k < 4000; ++k) {
      series.push_back(random.Bernoulli(0.3) ? 1.0 : 0.0);
    }
  }
  core::EqualImpactReport report = core::AuditEqualImpact(actions);
  EXPECT_TRUE(report.all_settled);
  EXPECT_TRUE(report.equal_impact);
  for (double r : report.limits) EXPECT_NEAR(r, 0.3, 0.05);
}

TEST(EqualImpactAuditTest, HeterogeneousLimitsFail) {
  std::vector<std::vector<double>> actions(2);
  for (int k = 0; k < 2000; ++k) {
    actions[0].push_back(1.0);  // r_0 = 1.
    actions[1].push_back(0.0);  // r_1 = 0.
  }
  core::EqualImpactReport report = core::AuditEqualImpact(actions);
  EXPECT_TRUE(report.all_settled);       // Both settle...
  EXPECT_NEAR(report.coincidence_gap, 1.0, 1e-12);
  EXPECT_FALSE(report.equal_impact);     // ...but to different limits.
}

TEST(EqualImpactAuditTest, NonSettlingSeriesFails) {
  // A drifting series whose Cesaro average keeps moving.
  std::vector<std::vector<double>> actions(1);
  for (int k = 0; k < 200; ++k) {
    actions[0].push_back(static_cast<double>(k));
  }
  core::EqualImpactCriteria criteria;
  criteria.settle_tolerance = 0.1;
  core::EqualImpactReport report = core::AuditEqualImpact(actions, criteria);
  EXPECT_FALSE(report.all_settled);
  EXPECT_FALSE(report.equal_impact);
}

TEST(EqualImpactAuditTest, ConditionedAuditSplitsByClass) {
  // Two classes with different but internally consistent limits: the
  // unconditional audit fails, the conditioned one passes per class
  // (Definition 4 vs Definition 3).
  std::vector<std::vector<double>> actions(4);
  std::vector<size_t> class_of{0, 0, 1, 1};
  for (int k = 0; k < 2000; ++k) {
    actions[0].push_back(1.0);
    actions[1].push_back(1.0);
    actions[2].push_back(0.0);
    actions[3].push_back(0.0);
  }
  EXPECT_FALSE(core::AuditEqualImpact(actions).equal_impact);
  std::vector<core::EqualImpactReport> reports =
      core::AuditEqualImpactConditioned(actions, class_of, 2);
  EXPECT_TRUE(reports[0].equal_impact);
  EXPECT_TRUE(reports[1].equal_impact);
}

TEST(EqualImpactAuditTest, EmptyClassIsVacuouslyFair) {
  std::vector<std::vector<double>> actions(1);
  actions[0].assign(100, 0.5);
  std::vector<core::EqualImpactReport> reports =
      core::AuditEqualImpactConditioned(actions, {0}, 3);
  EXPECT_TRUE(reports[1].equal_impact);
  EXPECT_TRUE(reports[2].equal_impact);
}

TEST(InitialConditionAuditTest, MatchingRunsPass) {
  rng::Random random_a(21), random_b(22);
  std::vector<std::vector<std::vector<double>>> runs(2);
  for (auto& run : runs) {
    run.resize(5);
    for (auto& series : run) {
      rng::Random& random = (&run == &runs[0]) ? random_a : random_b;
      for (int k = 0; k < 5000; ++k) {
        series.push_back(random.Bernoulli(0.4) ? 1.0 : 0.0);
      }
    }
  }
  core::InitialConditionReport report =
      core::AuditInitialConditionIndependence(runs, 0.05);
  EXPECT_TRUE(report.independent);
  EXPECT_LT(report.max_gap, 0.05);
}

TEST(InitialConditionAuditTest, DivergentRunsFail) {
  std::vector<std::vector<std::vector<double>>> runs(2);
  runs[0].push_back(std::vector<double>(100, 1.0));
  runs[1].push_back(std::vector<double>(100, 0.0));
  core::InitialConditionReport report =
      core::AuditInitialConditionIndependence(runs, 0.05);
  EXPECT_FALSE(report.independent);
  EXPECT_NEAR(report.max_gap, 1.0, 1e-12);
}

// --- Equal-treatment auditor ---------------------------------------------------

TEST(EqualTreatmentAuditTest, UniformDeterministicActionsPass) {
  std::vector<std::vector<double>> actions(3);
  for (auto& series : actions) series.assign(50, 0.7);
  core::EqualTreatmentReport report =
      core::AuditEqualTreatment(actions, 1e-9);
  EXPECT_TRUE(report.constant_action);
  EXPECT_DOUBLE_EQ(report.max_gap, 0.0);
}

TEST(EqualTreatmentAuditTest, StochasticResponsesFail) {
  rng::Random random(31);
  std::vector<std::vector<double>> actions(3);
  for (auto& series : actions) {
    for (int k = 0; k < 50; ++k) {
      series.push_back(random.Bernoulli(0.5) ? 1.0 : 0.0);
    }
  }
  core::EqualTreatmentReport report =
      core::AuditEqualTreatment(actions, 1e-9);
  EXPECT_FALSE(report.constant_action);
  EXPECT_GT(report.max_gap, 0.0);
}

TEST(EqualTreatmentAuditTest, TimeVaryingUniformActionsStillFail) {
  // Same action for everyone at each step, but drifting over time:
  // Definition 1 requires a single constant r.
  std::vector<std::vector<double>> actions(2);
  for (int k = 0; k < 50; ++k) {
    double value = k < 25 ? 0.0 : 1.0;
    actions[0].push_back(value);
    actions[1].push_back(value);
  }
  core::EqualTreatmentReport report =
      core::AuditEqualTreatment(actions, 1e-9);
  EXPECT_DOUBLE_EQ(report.max_gap, 0.0);    // Per-step uniformity holds...
  EXPECT_FALSE(report.constant_action);     // ...but constancy fails.
}

TEST(EqualTreatmentAuditTest, ConditionedTreatmentByClass) {
  std::vector<std::vector<double>> actions(4);
  std::vector<size_t> class_of{0, 0, 1, 1};
  for (int k = 0; k < 20; ++k) {
    actions[0].push_back(1.0);
    actions[1].push_back(1.0);
    actions[2].push_back(0.0);
    actions[3].push_back(0.0);
  }
  core::EqualTreatmentReport unconditional =
      core::AuditEqualTreatment(actions, 1e-9);
  EXPECT_FALSE(unconditional.constant_action);
  std::vector<core::EqualTreatmentReport> by_class =
      core::AuditEqualTreatmentConditioned(actions, class_of, 2, 1e-9);
  EXPECT_TRUE(by_class[0].constant_action);
  EXPECT_TRUE(by_class[1].constant_action);
}

// --- Comparison functions / incremental ISS ------------------------------------

TEST(ComparisonFunctionTest, LinearGainIsClassKInfinity) {
  auto linear = [](double s) { return 2.0 * s; };
  EXPECT_TRUE(core::LooksLikeClassK(linear, 10.0));
  EXPECT_TRUE(core::LooksLikeClassKInfinity(linear, 10.0));
}

TEST(ComparisonFunctionTest, SaturatingGainIsKButNotKInfinity) {
  auto saturating = [](double s) { return s / (1.0 + s); };
  EXPECT_TRUE(core::LooksLikeClassK(saturating, 10.0));
  EXPECT_FALSE(core::LooksLikeClassKInfinity(saturating, 10.0));
}

TEST(ComparisonFunctionTest, OffsetFunctionIsNotClassK) {
  auto offset = [](double s) { return s + 1.0; };  // f(0) != 0.
  EXPECT_FALSE(core::LooksLikeClassK(offset, 10.0));
}

TEST(ComparisonFunctionTest, DecreasingFunctionIsNotClassK) {
  auto decreasing = [](double s) { return -s; };
  EXPECT_FALSE(core::LooksLikeClassK(decreasing, 10.0));
}

TEST(ComparisonFunctionTest, GeometricDecayIsClassKL) {
  auto beta = [](double s, double t) { return 2.0 * s * std::pow(0.5, t); };
  EXPECT_TRUE(core::LooksLikeClassKL(beta, 5.0, 60.0));
}

TEST(ComparisonFunctionTest, NonDecayingBetaIsNotKL) {
  auto beta = [](double s, double t) { return s * (1.0 + 0.0 * t) + s; };
  EXPECT_FALSE(core::LooksLikeClassKL(beta, 5.0, 60.0));
}

TEST(LinearIssTest, SchurStableMatrixIsCertified) {
  Matrix a{{0.5, 0.2}, {0.0, 0.3}};
  core::LinearIssCertificate certificate =
      core::CertifyLinearIncrementalIss(a);
  EXPECT_TRUE(certificate.incrementally_iss);
  EXPECT_LT(certificate.spectral_radius, 1.0);
  EXPECT_LT(certificate.decay_rate, 1.0);
  EXPECT_GE(certificate.overshoot, 1.0);
}

TEST(LinearIssTest, IntegratorIsNotIss) {
  // The paper's Section VI culprit: integral action. A pure integrator
  // has spectral radius exactly 1 and is not incrementally ISS.
  Matrix integrator{{1.0}};
  core::LinearIssCertificate certificate =
      core::CertifyLinearIncrementalIss(integrator);
  EXPECT_FALSE(certificate.incrementally_iss);
  EXPECT_NEAR(certificate.spectral_radius, 1.0, 1e-9);
}

TEST(LinearIssTest, UnstableMatrixIsRejected) {
  Matrix a{{1.2, 0.0}, {0.0, 0.5}};
  EXPECT_FALSE(core::CertifyLinearIncrementalIss(a).incrementally_iss);
}

TEST(LinearIssTest, CertifiedBetaBoundsTrajectoryDifferences) {
  // ||x(k; xi1) - x(k; xi2)|| <= overshoot * decay^k * ||xi1 - xi2|| with
  // equal inputs — validate the certificate on a simulated pair.
  Matrix a{{0.8, 0.1}, {-0.2, 0.6}};
  core::LinearIssCertificate certificate =
      core::CertifyLinearIncrementalIss(a);
  ASSERT_TRUE(certificate.incrementally_iss);
  Vector x1{5.0, -3.0};
  Vector x2{-1.0, 2.0};
  double initial_gap = (x1 - x2).NormInf();
  for (int k = 0; k < 60; ++k) {
    double bound = certificate.overshoot *
                   std::pow(certificate.decay_rate, k) * initial_gap;
    EXPECT_LE((x1 - x2).NormInf(), bound + 1e-9) << "step " << k;
    x1 = a * x1;
    x2 = a * x2;
  }
}

// --- Ergodicity certificates -----------------------------------------------------

TEST(ErgodicityCertificateTest, AperiodicChainIsUniquelyErgodic) {
  markov::MarkovChain chain(Matrix{{0.5, 0.5}, {0.3, 0.7}});
  core::ErgodicityCertificate certificate = core::CertifyMarkovChain(chain);
  EXPECT_TRUE(certificate.irreducible);
  EXPECT_TRUE(certificate.aperiodic);
  EXPECT_TRUE(certificate.invariant_measure_exists);
  EXPECT_TRUE(certificate.uniquely_ergodic);
}

TEST(ErgodicityCertificateTest, PeriodicChainHasMeasureButNotAttractive) {
  markov::MarkovChain flip(Matrix{{0.0, 1.0}, {1.0, 0.0}});
  core::ErgodicityCertificate certificate = core::CertifyMarkovChain(flip);
  EXPECT_TRUE(certificate.irreducible);
  EXPECT_FALSE(certificate.aperiodic);
  EXPECT_TRUE(certificate.invariant_measure_exists);
  EXPECT_FALSE(certificate.uniquely_ergodic);
}

TEST(ErgodicityCertificateTest, ReducibleChainFails) {
  markov::MarkovChain absorbing(Matrix{{1.0, 0.0}, {0.5, 0.5}});
  core::ErgodicityCertificate certificate =
      core::CertifyMarkovChain(absorbing);
  EXPECT_FALSE(certificate.irreducible);
  EXPECT_FALSE(certificate.uniquely_ergodic);
}

TEST(ErgodicityCertificateTest, ContractiveIfsIsCertified) {
  markov::AffineIfs ifs({markov::AffineMap::Scalar(0.5, 0.0),
                         markov::AffineMap::Scalar(0.5, 1.0)},
                        {0.5, 0.5});
  core::ErgodicityCertificate certificate = core::CertifyAffineIfs(ifs);
  EXPECT_TRUE(certificate.uniquely_ergodic);
  EXPECT_NEAR(certificate.contraction_factor, 0.5, 1e-12);
}

TEST(ErgodicityCertificateTest, ExpansiveIfsIsRejected) {
  markov::AffineIfs ifs({markov::AffineMap::Scalar(1.5, 0.0)}, {1.0});
  core::ErgodicityCertificate certificate = core::CertifyAffineIfs(ifs);
  EXPECT_FALSE(certificate.average_contractive);
  EXPECT_FALSE(certificate.uniquely_ergodic);
}

TEST(ErgodicityCertificateTest, SummaryMentionsKeyFields) {
  markov::MarkovChain chain(Matrix{{0.5, 0.5}, {0.3, 0.7}});
  std::string summary = core::CertifyMarkovChain(chain).Summary();
  EXPECT_NE(summary.find("irreducible=yes"), std::string::npos);
  EXPECT_NE(summary.find("uniquely_ergodic=yes"), std::string::npos);
}

// --- Parameterized sweeps ----------------------------------------------------------

class SpectralSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpectralSweep, IssCertificateTracksSpectralRadius) {
  double rho = GetParam();
  Matrix a{{rho, 0.0}, {0.0, rho * 0.5}};
  core::LinearIssCertificate certificate =
      core::CertifyLinearIncrementalIss(a);
  EXPECT_EQ(certificate.incrementally_iss, rho < 1.0) << "rho " << rho;
  EXPECT_NEAR(certificate.spectral_radius, rho, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Radii, SpectralSweep,
                         ::testing::Values(0.1, 0.5, 0.9, 0.99, 1.01, 1.5));

// --- Spectral certificates (the sparse Ulam path). --------------------------

TEST(SpectralCertificateTest, UniformLimitIfsIsCertifiedWithHalfGap) {
  // w1 = x/2, w2 = x/2 + 1/2, p = (1/2, 1/2): invariant measure Lebesgue
  // on [0, 1], transfer-operator subdominant eigenvalue 1/2. The cell
  // count must not be a power of two: on a dyadic grid the images align
  // exactly with cell boundaries, P^log2(n) becomes rank one and every
  // non-Perron eigenvalue collapses to 0 (gap ~= 1 instead of 1/2).
  markov::AffineIfs ifs(
      {markov::AffineMap::Scalar(0.5, 0.0), markov::AffineMap::Scalar(0.5, 0.5)},
      {0.5, 0.5});
  core::SpectralCertificateOptions options;
  options.num_cells = 250;
  core::SpectralCertificate certificate =
      core::CertifyIfsSpectral(ifs, 0.0, 1.0, options);
  EXPECT_TRUE(certificate.average_contractive);
  EXPECT_NEAR(certificate.contraction_factor, 0.5, 1e-12);
  ASSERT_TRUE(certificate.invariant_measure_exists);
  EXPECT_TRUE(certificate.solver_converged);
  EXPECT_NEAR(certificate.invariant_mean, 0.5, 1e-2);
  EXPECT_NEAR(certificate.spectral_gap, 0.5, 0.05);
  EXPECT_TRUE(std::isfinite(certificate.mixing_time_bound));
  EXPECT_GE(certificate.mixing_time_bound, 1.0);
  EXPECT_TRUE(certificate.certified);
  EXPECT_NE(certificate.measure_digest, 0u);
}

TEST(SpectralCertificateTest, SlopeOneIfsHasMeasureButIsNotCertified) {
  // Two slope-1 maps: contraction factor exactly 1, so the IFS is not
  // average-contractive — yet the *discretised* chain (a clamped random
  // walk on the cells) still has a unique invariant measure. The
  // certificate must report the measure and still refuse to certify.
  markov::AffineIfs ifs(
      {markov::AffineMap::Scalar(1.0, -0.1), markov::AffineMap::Scalar(1.0, 0.1)},
      {0.5, 0.5});
  core::SpectralCertificateOptions options;
  options.num_cells = 64;
  core::SpectralCertificate certificate =
      core::CertifyIfsSpectral(ifs, 0.0, 1.0, options);
  EXPECT_FALSE(certificate.average_contractive);
  EXPECT_NEAR(certificate.contraction_factor, 1.0, 1e-12);
  EXPECT_TRUE(certificate.invariant_measure_exists);
  EXPECT_FALSE(certificate.certified);
}

TEST(SpectralCertificateTest, CertificateIsDeterministicAcrossThreadCounts) {
  markov::AffineIfs ifs(
      {markov::AffineMap::Scalar(0.5, 0.0), markov::AffineMap::Scalar(0.5, 0.5)},
      {0.6, 0.4});
  core::SpectralCertificateOptions options;
  options.num_cells = 128;
  core::SpectralCertificate reference =
      core::CertifyIfsSpectral(ifs, 0.0, 1.0, options);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    options.num_threads = threads;
    core::SpectralCertificate rerun =
        core::CertifyIfsSpectral(ifs, 0.0, 1.0, options);
    EXPECT_EQ(rerun.measure_digest, reference.measure_digest)
        << threads << " threads";
    EXPECT_EQ(rerun.solver_iterations, reference.solver_iterations);
  }
}

}  // namespace
}  // namespace eqimpact
