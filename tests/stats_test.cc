// Unit tests for the stats module: streaming statistics, time-series
// diagnostics, histograms and cross-trial aggregation.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include <gtest/gtest.h>

#include "base/serial.h"
#include "rng/random.h"
#include "stats/adr_accumulator.h"
#include "stats/aggregate.h"
#include "stats/histogram.h"
#include "stats/running_stats.h"
#include "stats/time_series.h"

namespace eqimpact {
namespace {

TEST(RunningStatsTest, EmptyAccumulator) {
  stats::RunningStats acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.Variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  stats::RunningStats acc;
  acc.Add(4.0);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_DOUBLE_EQ(acc.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.Min(), 4.0);
  EXPECT_DOUBLE_EQ(acc.Max(), 4.0);
}

TEST(RunningStatsTest, KnownMoments) {
  stats::RunningStats acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_DOUBLE_EQ(acc.Mean(), 5.0);
  EXPECT_NEAR(acc.Variance(), 32.0 / 7.0, 1e-12);  // Unbiased.
  EXPECT_DOUBLE_EQ(acc.Min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.Max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesPooledComputation) {
  stats::RunningStats left, right, pooled;
  for (int i = 0; i < 50; ++i) {
    double x = 0.1 * i * i - 2.0 * i;
    (i % 2 == 0 ? left : right).Add(x);
    pooled.Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), pooled.count());
  EXPECT_NEAR(left.Mean(), pooled.Mean(), 1e-10);
  EXPECT_NEAR(left.Variance(), pooled.Variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.Min(), pooled.Min());
  EXPECT_DOUBLE_EQ(left.Max(), pooled.Max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  stats::RunningStats filled, empty;
  filled.Add(1.0);
  filled.Add(3.0);
  stats::RunningStats copy = filled;
  copy.Merge(empty);
  EXPECT_DOUBLE_EQ(copy.Mean(), 2.0);
  empty.Merge(filled);
  EXPECT_DOUBLE_EQ(empty.Mean(), 2.0);
}

TEST(CesaroTest, ConstantSeriesIsItsOwnAverage) {
  std::vector<double> averages = stats::CesaroAverages({2.0, 2.0, 2.0});
  for (double a : averages) EXPECT_DOUBLE_EQ(a, 2.0);
}

TEST(CesaroTest, KnownPrefixAverages) {
  std::vector<double> averages = stats::CesaroAverages({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(averages[0], 1.0);
  EXPECT_DOUBLE_EQ(averages[1], 1.5);
  EXPECT_DOUBLE_EQ(averages[2], 2.0);
  EXPECT_DOUBLE_EQ(averages[3], 2.5);
}

TEST(CesaroTest, AlternatingSeriesConvergesToMidpoint) {
  std::vector<double> series;
  for (int i = 0; i < 1000; ++i) series.push_back(i % 2 == 0 ? 0.0 : 1.0);
  std::vector<double> averages = stats::CesaroAverages(series);
  EXPECT_NEAR(averages.back(), 0.5, 1e-3);
}

TEST(HasSettledTest, FlatTailSettles) {
  std::vector<double> series{5.0, 3.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_TRUE(stats::HasSettled(series, 4, 1e-9));
}

TEST(HasSettledTest, MovingTailDoesNot) {
  std::vector<double> series{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  EXPECT_FALSE(stats::HasSettled(series, 4, 0.5));
}

TEST(HasSettledTest, ShortSeriesNeverSettles) {
  EXPECT_FALSE(stats::HasSettled({1.0, 1.0}, 3, 1.0));
}

TEST(CoincidenceGapTest, KnownGaps) {
  EXPECT_DOUBLE_EQ(stats::CoincidenceGap({}), 0.0);
  EXPECT_DOUBLE_EQ(stats::CoincidenceGap({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(stats::CoincidenceGap({1.0, 4.0, 2.0}), 3.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> values{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::Quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(stats::Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::Quantile(values, 1.0), 5.0);
}

TEST(QuantileTest, InterpolatesBetweenOrderStatistics) {
  std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(stats::Quantile(values, 0.25), 2.5);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(stats::Quantile({7.0}, 0.9), 7.0);
}

TEST(KsTest, IdenticalSamplesHaveZeroDistance) {
  std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::KsStatistic(a, a), 0.0);
}

TEST(KsTest, DisjointSamplesHaveDistanceOne) {
  EXPECT_DOUBLE_EQ(stats::KsStatistic({1.0, 2.0}, {10.0, 11.0}), 1.0);
}

TEST(KsTest, KnownPartialOverlap) {
  // F_a jumps at 1, 2; F_b jumps at 2, 3. Max gap is 0.5 just before 2.
  EXPECT_NEAR(stats::KsStatistic({1.0, 2.0}, {2.0, 3.0}), 0.5, 1e-12);
}

TEST(HistogramTest, BinAssignment) {
  stats::Histogram h(0.0, 1.0, 4);
  h.Add(0.1);   // Bin 0.
  h.Add(0.30);  // Bin 1.
  h.Add(0.99);  // Bin 3.
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 1);
  EXPECT_EQ(h.count(2), 0);
  EXPECT_EQ(h.count(3), 1);
  EXPECT_EQ(h.total_count(), 3);
}

TEST(HistogramTest, ClampsOutOfRangeValues) {
  stats::Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);
  h.Add(7.0);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 1);
}

TEST(HistogramTest, UpperBoundGoesToLastBin) {
  stats::Histogram h(0.0, 1.0, 2);
  h.Add(1.0);
  EXPECT_EQ(h.count(1), 1);
}

TEST(HistogramTest, FractionsAndDensities) {
  stats::Histogram h(0.0, 2.0, 2);
  h.AddAll({0.5, 0.6, 1.5, 1.6});
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.Density(0), 0.5);  // Fraction / bin width 1.0.
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 0.5);
  EXPECT_DOUBLE_EQ(h.BinCenter(1), 1.5);
}

TEST(HistogramTest, AsciiChartHasOneLinePerBin) {
  stats::Histogram h(0.0, 1.0, 3);
  h.AddAll({0.1, 0.5, 0.9, 0.95});
  std::string chart = h.ToAsciiChart(10);
  int lines = 0;
  for (char c : chart) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3);
}

TEST(AggregateTest, EnvelopeOfIdenticalSeriesHasZeroStd) {
  std::vector<std::vector<double>> series{{1.0, 2.0}, {1.0, 2.0}};
  stats::SeriesEnvelope env = stats::AggregateEnvelope(series);
  EXPECT_DOUBLE_EQ(env.mean[0], 1.0);
  EXPECT_DOUBLE_EQ(env.mean[1], 2.0);
  EXPECT_DOUBLE_EQ(env.std_dev[0], 0.0);
}

TEST(AggregateTest, EnvelopeMeanAndStd) {
  std::vector<std::vector<double>> series{{0.0}, {2.0}};
  stats::SeriesEnvelope env = stats::AggregateEnvelope(series);
  EXPECT_DOUBLE_EQ(env.mean[0], 1.0);
  EXPECT_NEAR(env.std_dev[0], std::sqrt(2.0), 1e-12);
}

TEST(AggregateTest, CrossSectionSelectsColumn) {
  std::vector<std::vector<double>> series{{1.0, 2.0}, {3.0, 4.0}};
  std::vector<double> cross = stats::CrossSection(series, 1);
  EXPECT_EQ(cross.size(), 2u);
  EXPECT_DOUBLE_EQ(cross[0], 2.0);
  EXPECT_DOUBLE_EQ(cross[1], 4.0);
}

TEST(AggregateTest, QuantileFanBracketsTheBundle) {
  std::vector<std::vector<double>> series;
  for (int i = 0; i < 11; ++i) {
    series.push_back({static_cast<double>(i), static_cast<double>(10 - i)});
  }
  std::vector<std::vector<double>> fan =
      stats::QuantileFan(series, {0.0, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(fan[0][0], 0.0);   // Min at step 0.
  EXPECT_DOUBLE_EQ(fan[1][0], 5.0);   // Median.
  EXPECT_DOUBLE_EQ(fan[2][0], 10.0);  // Max.
  EXPECT_DOUBLE_EQ(fan[1][1], 5.0);   // Median preserved at step 1.
}

// --- Parameterized sweeps ---------------------------------------------------

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, QuantileIsMonotoneInP) {
  std::vector<double> values{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  double p = GetParam();
  double q_lo = stats::Quantile(values, p * 0.9);
  double q_hi = stats::Quantile(values, std::min(1.0, p * 1.1));
  EXPECT_LE(q_lo, q_hi);
  double q = stats::Quantile(values, p);
  EXPECT_GE(q, 1.0);
  EXPECT_LE(q, 9.0);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, QuantileSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

class CesaroSettleSweep : public ::testing::TestWithParam<int> {};

TEST_P(CesaroSettleSweep, CesaroAveragesOfBernoulliLikeSeriesSettle) {
  // Deterministic pseudo-Bernoulli pattern with long-run mean 1/3: the
  // Cesaro averages must settle and land near 1/3 for any phase offset.
  int phase = GetParam();
  std::vector<double> series;
  for (int i = 0; i < 3000; ++i) {
    series.push_back((i + phase) % 3 == 0 ? 1.0 : 0.0);
  }
  std::vector<double> averages = stats::CesaroAverages(series);
  EXPECT_TRUE(stats::HasSettled(averages, 50, 0.01));
  EXPECT_NEAR(averages.back(), 1.0 / 3.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Phases, CesaroSettleSweep,
                         ::testing::Values(0, 1, 2));

// --- Streaming grouped per-step accumulator ---------------------------------

TEST(AdrAccumulatorTest, DefaultIsEmptyShell) {
  stats::AdrAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.num_groups(), 0u);
}

TEST(AdrAccumulatorTest, MomentsMatchRunningStats) {
  stats::AdrAccumulator acc(2, 3, 10);
  stats::RunningStats reference;
  const std::vector<double> values{0.1, 0.4, 0.4, 0.9, 0.25};
  for (double v : values) {
    acc.Add(1, 0, v);
    reference.Add(v);
  }
  EXPECT_EQ(acc.count(1, 0), reference.count());
  EXPECT_DOUBLE_EQ(acc.stats(1, 0).Mean(), reference.Mean());
  EXPECT_DOUBLE_EQ(acc.stats(1, 0).StdDev(), reference.StdDev());
  EXPECT_DOUBLE_EQ(acc.stats(1, 0).Min(), 0.1);
  EXPECT_DOUBLE_EQ(acc.stats(1, 0).Max(), 0.9);
  // Other cells untouched.
  EXPECT_EQ(acc.count(0, 0), 0);
  EXPECT_EQ(acc.count(1, 1), 0);
  EXPECT_EQ(acc.StepCount(1), 5);
}

TEST(AdrAccumulatorTest, BinningMatchesHistogram) {
  stats::AdrAccumulator acc(1, 1, 10);
  stats::Histogram histogram(0.0, 1.0, 10);
  const std::vector<double> values{-0.5, 0.0, 0.05, 0.1, 0.55, 0.999,
                                   1.0,  1.5, 0.3,  0.3};
  for (double v : values) {
    acc.Add(0, 0, v);
    histogram.Add(v);
  }
  for (size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(acc.bin_count(0, 0, b), histogram.count(b)) << "bin " << b;
    EXPECT_DOUBLE_EQ(acc.StepBinFraction(0, b), histogram.Fraction(b));
  }
}

TEST(AdrAccumulatorTest, CrossSectionRoutesByGroup) {
  stats::AdrAccumulator acc(3, 2, 4);
  acc.AddCrossSection(0, {0.1, 0.9, 0.5}, {0, 2, 0});
  EXPECT_EQ(acc.count(0, 0), 2);
  EXPECT_EQ(acc.count(0, 1), 0);
  EXPECT_EQ(acc.count(0, 2), 1);
  EXPECT_DOUBLE_EQ(acc.stats(0, 2).Mean(), 0.9);
}

TEST(AdrAccumulatorTest, QuantilesExactAtExtremesAndMonotone) {
  stats::AdrAccumulator acc(1, 1, 64);
  rng::Random random(99);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(random.UniformDouble());
    acc.Add(0, 0, values.back());
  }
  std::sort(values.begin(), values.end());
  EXPECT_DOUBLE_EQ(acc.ApproxQuantile(0, 0, 0.0), values.front());
  EXPECT_DOUBLE_EQ(acc.ApproxQuantile(0, 0, 1.0), values.back());
  // Inner quantiles land within one bin width of the exact order
  // statistic, and the fan is monotone in p.
  double previous = -1.0;
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    double approx = acc.ApproxQuantile(0, 0, p);
    double exact = values[static_cast<size_t>(p * 1999.0)];
    EXPECT_NEAR(approx, exact, 1.0 / 64.0 + 1e-12) << "p=" << p;
    EXPECT_GE(approx, previous);
    previous = approx;
  }
  // The group-blind variant coincides with the single group's.
  EXPECT_DOUBLE_EQ(acc.StepApproxQuantile(0, 0.5),
                   acc.ApproxQuantile(0, 0, 0.5));
}

TEST(AdrAccumulatorTest, MergeMatchesSingleAccumulation) {
  stats::AdrAccumulator merged(2, 2, 8);
  stats::AdrAccumulator a(2, 2, 8);
  stats::AdrAccumulator b(2, 2, 8);
  stats::AdrAccumulator reference(2, 2, 8);
  rng::Random random(7);
  for (int i = 0; i < 500; ++i) {
    size_t k = i % 2;
    size_t g = (i / 2) % 2;
    double v = random.UniformDouble();
    (i < 250 ? a : b).Add(k, g, v);
    reference.Add(k, g, v);
  }
  merged.Merge(a);
  merged.Merge(b);
  for (size_t k = 0; k < 2; ++k) {
    for (size_t g = 0; g < 2; ++g) {
      EXPECT_EQ(merged.count(k, g), reference.count(k, g));
      EXPECT_NEAR(merged.stats(k, g).Mean(), reference.stats(k, g).Mean(),
                  1e-12);
      EXPECT_NEAR(merged.stats(k, g).Variance(),
                  reference.stats(k, g).Variance(), 1e-12);
      for (size_t bin = 0; bin < 8; ++bin) {
        EXPECT_EQ(merged.bin_count(k, g, bin),
                  reference.bin_count(k, g, bin));
      }
    }
  }
}

TEST(AdrAccumulatorTest, MergeIntoEmptyAdoptsShape) {
  stats::AdrAccumulator target;  // Shape-less.
  stats::AdrAccumulator source(1, 2, 4);
  source.Add(0, 0, 0.5);
  target.Merge(source);
  EXPECT_EQ(target.num_steps(), 2u);
  EXPECT_EQ(target.count(0, 0), 1);
}

/// Serialized image of a RunningStats — bitwise state comparison for
/// the merge/round-trip tests below (equal buffers <=> equal bits in
/// every field, including the sign of zeros).
std::vector<uint8_t> StatsBytes(const stats::RunningStats& acc) {
  base::BinaryWriter writer;
  acc.Serialize(&writer);
  return writer.TakeBuffer();
}

std::vector<uint8_t> AccumulatorBytes(const stats::AdrAccumulator& acc) {
  base::BinaryWriter writer;
  acc.Serialize(&writer);
  return writer.TakeBuffer();
}

TEST(RunningStatsTest, SerializeRoundTripIsBitwise) {
  stats::RunningStats acc;
  for (double x : {0.3, -1.5, 2.25, 0.3, 7.0}) acc.Add(x);
  const std::vector<uint8_t> bytes = StatsBytes(acc);
  base::BinaryReader reader(bytes.data(), bytes.size());
  stats::RunningStats restored;
  ASSERT_TRUE(restored.Deserialize(&reader));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(StatsBytes(restored), bytes);
  // And the restored accumulator keeps accumulating identically.
  acc.Add(0.125);
  restored.Add(0.125);
  EXPECT_EQ(StatsBytes(restored), StatsBytes(acc));
}

TEST(RunningStatsTest, MergeWithEmptyShardPreservesBits) {
  // An empty shard is a no-op on either side: merging it must not
  // change a single bit of the populated accumulator (the sharded
  // engine merges every shard unconditionally, including shards whose
  // user range produced no observations).
  stats::RunningStats populated;
  for (double x : {0.1, 0.7, 0.7, 0.2}) populated.Add(x);
  const std::vector<uint8_t> before = StatsBytes(populated);

  stats::RunningStats empty;
  populated.Merge(empty);
  EXPECT_EQ(StatsBytes(populated), before);

  stats::RunningStats adopted;
  adopted.Merge(populated);
  EXPECT_EQ(StatsBytes(adopted), before);
}

TEST(RunningStatsTest, MergeOrderIsPinnedButNotCommutativeBitwise) {
  // Chan et al.'s pairwise merge is algebraically symmetric but not
  // bitwise so: different merge orders may land on different last-ulp
  // results. The sharded engine therefore merges in fixed shard order —
  // this test pins both halves of that contract: same order, same bits;
  // any order, same statistics to rounding.
  auto fill = [](std::initializer_list<double> values) {
    stats::RunningStats acc;
    for (double x : values) acc.Add(x);
    return acc;
  };
  const stats::RunningStats a = fill({0.1, 0.7});
  const stats::RunningStats b = fill({1000.25, -2.5, 0.3});
  const stats::RunningStats c = fill({-7.25, 4.4});

  auto merged = [](const stats::RunningStats& x, const stats::RunningStats& y,
                   const stats::RunningStats& z) {
    stats::RunningStats out;
    out.Merge(x);
    out.Merge(y);
    out.Merge(z);
    return out;
  };
  const stats::RunningStats forward = merged(a, b, c);
  const stats::RunningStats again = merged(a, b, c);
  const stats::RunningStats reversed = merged(c, b, a);
  // Deterministic: the same order reproduces the same bits.
  EXPECT_EQ(StatsBytes(again), StatsBytes(forward));
  // Any order agrees statistically (counts exactly, moments to
  // rounding) — but only the pinned order is bitwise-reproducible.
  EXPECT_EQ(reversed.count(), forward.count());
  EXPECT_NEAR(reversed.Mean(), forward.Mean(), 1e-9);
  EXPECT_DOUBLE_EQ(reversed.Min(), forward.Min());
  EXPECT_DOUBLE_EQ(reversed.Max(), forward.Max());
}

TEST(AdrAccumulatorTest, MergeEmptyShardsPreservesBits) {
  stats::AdrAccumulator populated(2, 3, 4);
  populated.Add(0, 1, 0.4);
  populated.Add(2, 0, 0.9);
  const std::vector<uint8_t> before = AccumulatorBytes(populated);

  // A shaped-but-unfilled shard (what an all-idle shard produces).
  stats::AdrAccumulator idle(2, 3, 4);
  populated.Merge(idle);
  EXPECT_EQ(AccumulatorBytes(populated), before);

  // A shape-less default accumulator is equally inert.
  stats::AdrAccumulator shapeless;
  populated.Merge(shapeless);
  EXPECT_EQ(AccumulatorBytes(populated), before);
}

TEST(AdrAccumulatorTest, SingleShardMergeMatchesUnshardedBitwise) {
  // One shard that saw every observation, merged into an empty target,
  // must equal the unsharded accumulator bit for bit — the degenerate
  // case of the shard-order merge (and the adopt-on-empty fast path).
  stats::AdrAccumulator unsharded(3, 2, 8);
  stats::AdrAccumulator shard(3, 2, 8);
  rng::Random random(77);
  for (int i = 0; i < 200; ++i) {
    const size_t k = static_cast<size_t>(random.UniformInt(2));
    const size_t g = static_cast<size_t>(random.UniformInt(3));
    const double value = random.UniformDouble();
    unsharded.Add(k, g, value);
    shard.Add(k, g, value);
  }
  stats::AdrAccumulator target;
  target.Merge(shard);
  EXPECT_EQ(AccumulatorBytes(target), AccumulatorBytes(unsharded));
}

TEST(AdrAccumulatorTest, SerializeRoundTripIsBitwise) {
  stats::AdrAccumulator acc(2, 4, 8, 0.0, 1.0);
  rng::Random random(5);
  for (int i = 0; i < 100; ++i) {
    acc.Add(static_cast<size_t>(random.UniformInt(4)),
            static_cast<size_t>(random.UniformInt(2)),
            random.UniformDouble());
  }
  const std::vector<uint8_t> bytes = AccumulatorBytes(acc);
  stats::AdrAccumulator restored;
  base::BinaryReader reader(bytes.data(), bytes.size());
  ASSERT_TRUE(restored.Deserialize(&reader));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(AccumulatorBytes(restored), bytes);
  // Resumed accumulation stays in lockstep with the original.
  acc.Add(1, 1, 0.5);
  restored.Add(1, 1, 0.5);
  EXPECT_EQ(AccumulatorBytes(restored), AccumulatorBytes(acc));
}

TEST(AdrAccumulatorTest, DeserializeRejectsTruncatedBytes) {
  stats::AdrAccumulator acc(2, 2, 4);
  acc.Add(0, 0, 0.5);
  const std::vector<uint8_t> bytes = AccumulatorBytes(acc);
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{3}}) {
    stats::AdrAccumulator target;
    base::BinaryReader reader(bytes.data(), cut);
    EXPECT_FALSE(target.Deserialize(&reader)) << "cut at " << cut;
  }
}

TEST(AdrAccumulatorTest, GroupEnvelopeTracksPerStepMoments) {
  stats::AdrAccumulator acc(2, 3, 4);
  for (double v : {0.2, 0.4}) acc.Add(0, 1, v);
  for (double v : {0.6, 0.8}) acc.Add(2, 1, v);
  stats::SeriesEnvelope envelope = acc.GroupEnvelope(1);
  ASSERT_EQ(envelope.mean.size(), 3u);
  EXPECT_NEAR(envelope.mean[0], 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(envelope.mean[1], 0.0);  // Empty step.
  EXPECT_NEAR(envelope.mean[2], 0.7, 1e-12);
  EXPECT_NEAR(envelope.std_dev[0], acc.stats(0, 1).StdDev(), 1e-15);
}

}  // namespace
}  // namespace eqimpact
