// Unit tests for the Jacobi symmetric eigensolver and the exact spectral
// norm built on it.

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"
#include "linalg/vector.h"
#include "rng/random.h"

namespace eqimpact {
namespace {

using linalg::JacobiEigen;
using linalg::Matrix;
using linalg::SpectralNorm;
using linalg::SymmetricEigenResult;
using linalg::Vector;

TEST(JacobiEigenTest, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix a = Matrix::Diagonal(Vector{3.0, -1.0, 2.0});
  SymmetricEigenResult result = JacobiEigen(a);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(result.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(result.eigenvalues[2], -1.0, 1e-12);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  SymmetricEigenResult result = JacobiEigen(a);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(result.eigenvalues[1], 1.0, 1e-12);
}

TEST(JacobiEigenTest, EigenvectorsAreOrthonormal) {
  Matrix a{{4.0, 1.0, 0.5}, {1.0, 3.0, 0.2}, {0.5, 0.2, 1.0}};
  SymmetricEigenResult result = JacobiEigen(a);
  ASSERT_TRUE(result.converged);
  Matrix gram = result.eigenvectors.Transposed() * result.eigenvectors;
  EXPECT_TRUE(AllClose(gram, Matrix::Identity(3), 1e-10));
}

TEST(JacobiEigenTest, ReconstructsTheMatrix) {
  Matrix a{{4.0, 1.0, 0.5}, {1.0, 3.0, 0.2}, {0.5, 0.2, 1.0}};
  SymmetricEigenResult result = JacobiEigen(a);
  ASSERT_TRUE(result.converged);
  Matrix lambda = Matrix::Diagonal(result.eigenvalues);
  Matrix reconstructed =
      result.eigenvectors * lambda * result.eigenvectors.Transposed();
  EXPECT_TRUE(AllClose(reconstructed, a, 1e-10));
}

TEST(JacobiEigenTest, EigenpairsSatisfyDefinition) {
  Matrix a{{5.0, 2.0}, {2.0, 1.0}};
  SymmetricEigenResult result = JacobiEigen(a);
  ASSERT_TRUE(result.converged);
  for (size_t j = 0; j < 2; ++j) {
    Vector v = result.eigenvectors.Col(j);
    Vector av = a * v;
    Vector lv = result.eigenvalues[j] * v;
    EXPECT_TRUE(AllClose(av, lv, 1e-10)) << "eigenpair " << j;
  }
}

TEST(SpectralNormTest, DiagonalMatrix) {
  EXPECT_NEAR(SpectralNorm(Matrix::Diagonal(Vector{-3.0, 2.0})), 3.0, 1e-12);
}

TEST(SpectralNormTest, RotationHasNormOne) {
  double c = std::cos(0.3), s = std::sin(0.3);
  Matrix rotation{{c, -s}, {s, c}};
  EXPECT_NEAR(SpectralNorm(rotation), 1.0, 1e-10);
}

TEST(SpectralNormTest, RectangularMatrix) {
  // Rank-1: [[1], [2]] has spectral norm sqrt(5).
  Matrix a(2, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  EXPECT_NEAR(SpectralNorm(a), std::sqrt(5.0), 1e-12);
}

TEST(SpectralNormTest, BoundsMatrixVectorGrowth) {
  rng::Random random(17);
  Matrix a(3, 3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = random.UniformDouble(-2.0, 2.0);
  }
  double norm = SpectralNorm(a);
  for (int trial = 0; trial < 200; ++trial) {
    Vector x(3);
    for (size_t i = 0; i < 3; ++i) x[i] = random.UniformDouble(-1.0, 1.0);
    EXPECT_LE((a * x).Norm2(), norm * x.Norm2() + 1e-9);
  }
}

class JacobiSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(JacobiSweep, RandomSymmetricMatricesDecomposeExactly) {
  const size_t n = GetParam();
  rng::Random random(9000 + n);
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = r; c < n; ++c) {
      a(r, c) = a(c, r) = random.UniformDouble(-1.0, 1.0);
    }
  }
  SymmetricEigenResult result = JacobiEigen(a);
  ASSERT_TRUE(result.converged) << "n=" << n;
  // Eigenvalues descending.
  for (size_t j = 0; j + 1 < n; ++j) {
    EXPECT_GE(result.eigenvalues[j], result.eigenvalues[j + 1] - 1e-12);
  }
  // Reconstruction.
  Matrix reconstructed = result.eigenvectors *
                         Matrix::Diagonal(result.eigenvalues) *
                         result.eigenvectors.Transposed();
  EXPECT_TRUE(AllClose(reconstructed, a, 1e-9)) << "n=" << n;
  // Trace preservation.
  double trace_a = 0.0, trace_lambda = 0.0;
  for (size_t i = 0; i < n; ++i) {
    trace_a += a(i, i);
    trace_lambda += result.eigenvalues[i];
  }
  EXPECT_NEAR(trace_a, trace_lambda, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

}  // namespace
}  // namespace eqimpact
