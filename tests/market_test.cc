// Unit tests for the matching-market closed loop (the paper's two-sided
// market instantiation), the Gini statistic, the drift monitor, and the
// impact-equalizer intervention.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/drift_monitor.h"
#include "core/impact_equalizer.h"
#include "market/matching_market.h"
#include "rng/random.h"
#include "stats/time_series.h"

namespace eqimpact {
namespace {

using market::MatchingMarketOptions;
using market::MatchingMarketResult;
using market::MatchingRule;
using market::RunMatchingMarket;

// --- Gini ---------------------------------------------------------------------

TEST(GiniTest, EqualValuesGiveZero) {
  EXPECT_NEAR(stats::GiniCoefficient({2.0, 2.0, 2.0, 2.0}), 0.0, 1e-12);
}

TEST(GiniTest, SingleWinnerApproachesOne) {
  std::vector<double> values(100, 0.0);
  values[0] = 1.0;
  EXPECT_NEAR(stats::GiniCoefficient(values), 0.99, 1e-9);
}

TEST(GiniTest, KnownSmallSample) {
  // {0, 1}: Gini = 1/2.
  EXPECT_NEAR(stats::GiniCoefficient({0.0, 1.0}), 0.5, 1e-12);
}

TEST(GiniTest, ScaleInvariance) {
  std::vector<double> values{1.0, 2.0, 5.0, 9.0};
  double base = stats::GiniCoefficient(values);
  for (double& v : values) v *= 7.0;
  EXPECT_NEAR(stats::GiniCoefficient(values), base, 1e-12);
}

TEST(GiniTest, AllZerosGiveZero) {
  EXPECT_DOUBLE_EQ(stats::GiniCoefficient({0.0, 0.0}), 0.0);
}

// --- Matching market -----------------------------------------------------------

MatchingMarketOptions SmallMarket(uint64_t seed) {
  MatchingMarketOptions options;
  options.num_workers = 100;
  options.capacity_fraction = 0.5;
  options.rounds = 600;
  options.seed = seed;
  return options;
}

TEST(MatchingMarketTest, CapacityIsRespected) {
  MatchingMarketResult result =
      RunMatchingMarket(MatchingRule::kUniformRandom, SmallMarket(1));
  EXPECT_NEAR(result.mean_match_rate, 0.5, 1e-9);
  EXPECT_EQ(result.match_rate.size(), 100u);
}

TEST(MatchingMarketTest, LotteryGivesEqualImpact) {
  MatchingMarketResult result =
      RunMatchingMarket(MatchingRule::kUniformRandom, SmallMarket(2));
  // Every equally skilled worker gets ~the capacity fraction.
  EXPECT_LT(result.match_rate_gini, 0.05);
  EXPECT_LT(stats::CoincidenceGap(result.match_rate), 0.2);
}

TEST(MatchingMarketTest, PureExploitationLocksIn) {
  // Identical skills, yet top-score matching concentrates access: the
  // loop's own feedback produces the inequality.
  MatchingMarketResult result =
      RunMatchingMarket(MatchingRule::kTopScore, SmallMarket(3));
  EXPECT_GT(result.match_rate_gini, 0.3);
  // Some workers work almost always, some almost never.
  EXPECT_GT(stats::CoincidenceGap(result.match_rate), 0.9);
}

TEST(MatchingMarketTest, ExplorationRestoresEquality) {
  MatchingMarketOptions options = SmallMarket(4);
  options.exploration = 0.3;
  MatchingMarketResult explored =
      RunMatchingMarket(MatchingRule::kEpsilonGreedy, options);
  MatchingMarketResult exploited =
      RunMatchingMarket(MatchingRule::kTopScore, SmallMarket(4));
  EXPECT_LT(explored.match_rate_gini, exploited.match_rate_gini);
}

TEST(MatchingMarketTest, MoreExplorationMoreEquality) {
  double previous_gini = 1.0;
  for (double exploration : {0.05, 0.2, 0.5, 1.0}) {
    MatchingMarketOptions options = SmallMarket(5);
    options.exploration = exploration;
    MatchingMarketResult result =
        RunMatchingMarket(MatchingRule::kEpsilonGreedy, options);
    EXPECT_LE(result.match_rate_gini, previous_gini + 0.05)
        << "exploration " << exploration;
    previous_gini = result.match_rate_gini;
  }
}

TEST(MatchingMarketTest, DeterministicInSeed) {
  MatchingMarketResult a =
      RunMatchingMarket(MatchingRule::kTopScore, SmallMarket(6));
  MatchingMarketResult b =
      RunMatchingMarket(MatchingRule::kTopScore, SmallMarket(6));
  EXPECT_EQ(a.match_rate, b.match_rate);
}

TEST(MatchingMarketTest, InitialConditionDependenceUnderExploitation) {
  // Different seeds = different early luck. With identical skills the
  // *set* of locked-in winners changes with the seed: the per-worker
  // limits depend on initial conditions (ergodicity lost), even though
  // the aggregate (mean match rate) is pinned by capacity.
  MatchingMarketResult a =
      RunMatchingMarket(MatchingRule::kTopScore, SmallMarket(7));
  MatchingMarketResult b =
      RunMatchingMarket(MatchingRule::kTopScore, SmallMarket(8));
  EXPECT_NEAR(a.mean_match_rate, b.mean_match_rate, 1e-9);
  double max_worker_gap = 0.0;
  for (size_t i = 0; i < a.match_rate.size(); ++i) {
    max_worker_gap = std::max(max_worker_gap,
                              std::fabs(a.match_rate[i] - b.match_rate[i]));
  }
  EXPECT_GT(max_worker_gap, 0.5);
}

TEST(MatchingMarketTest, HeterogeneousSkillRewardsSkillUnderExploitation) {
  MatchingMarketOptions options = SmallMarket(9);
  options.heterogeneous_skill = true;
  options.exploration = 0.2;
  MatchingMarketResult result =
      RunMatchingMarket(MatchingRule::kEpsilonGreedy, options);
  // Correlation between skill and match rate should be positive.
  double mean_skill = 0.0, mean_rate = 0.0;
  for (size_t i = 0; i < result.skill.size(); ++i) {
    mean_skill += result.skill[i];
    mean_rate += result.match_rate[i];
  }
  mean_skill /= static_cast<double>(result.skill.size());
  mean_rate /= static_cast<double>(result.skill.size());
  double covariance = 0.0;
  for (size_t i = 0; i < result.skill.size(); ++i) {
    covariance += (result.skill[i] - mean_skill) *
                  (result.match_rate[i] - mean_rate);
  }
  EXPECT_GT(covariance, 0.0);
}

// --- Round observer + regulator controls -----------------------------------------

TEST(MatchingMarketTest, ObserverStreamsEveryRound) {
  MatchingMarketOptions options = SmallMarket(20);
  options.rounds = 50;
  size_t calls = 0;
  MatchingMarketResult result = RunMatchingMarket(
      MatchingRule::kUniformRandom, options,
      [&calls, &options](const market::RoundSnapshot& snapshot,
                         market::RoundControls*) {
        EXPECT_EQ(snapshot.round, calls);
        EXPECT_EQ(snapshot.running_match_rate.size(), options.num_workers);
        EXPECT_EQ(snapshot.matched.size(), options.num_workers);
        // Running rates are averages of the matchings so far.
        for (double rate : snapshot.running_match_rate) {
          EXPECT_GE(rate, 0.0);
          EXPECT_LE(rate, 1.0);
        }
        ++calls;
      });
  EXPECT_EQ(calls, 50u);
  // The final snapshot's running rates equal the result's match rates.
  EXPECT_EQ(result.match_rate.size(), options.num_workers);
}

TEST(MatchingMarketTest, ObserverDoesNotPerturbTheSimulation) {
  MatchingMarketOptions options = SmallMarket(21);
  MatchingMarketResult plain =
      RunMatchingMarket(MatchingRule::kEpsilonGreedy, options);
  MatchingMarketResult observed = RunMatchingMarket(
      MatchingRule::kEpsilonGreedy, options,
      [](const market::RoundSnapshot&, market::RoundControls*) {});
  EXPECT_EQ(plain.match_rate, observed.match_rate);
  EXPECT_EQ(plain.reputation, observed.reputation);
}

TEST(MatchingMarketTest, ObserverSteersExploration) {
  // A regulator that turns the lottery fully on defeats the lock-in.
  MatchingMarketOptions options = SmallMarket(22);
  options.exploration = 0.0;
  MatchingMarketResult locked =
      RunMatchingMarket(MatchingRule::kEpsilonGreedy, options);
  MatchingMarketResult steered = RunMatchingMarket(
      MatchingRule::kEpsilonGreedy, options,
      [](const market::RoundSnapshot&, market::RoundControls* controls) {
        controls->exploration = 1.0;
      });
  EXPECT_GT(locked.match_rate_gini, 0.3);
  EXPECT_LT(steered.match_rate_gini, 0.1);
  EXPECT_DOUBLE_EQ(steered.final_exploration, 1.0);
  EXPECT_DOUBLE_EQ(locked.final_exploration, 0.0);
}

TEST(MatchingMarketTest, ExploreWeightsSteerTheLottery) {
  // Zero weight = never drawn in the lottery: under a pure lottery
  // with half the workers weighted out, only the other half works.
  MatchingMarketOptions options = SmallMarket(23);
  options.rounds = 100;
  const size_t n = options.num_workers;
  MatchingMarketResult result = RunMatchingMarket(
      MatchingRule::kUniformRandom, options,
      [n](const market::RoundSnapshot&, market::RoundControls* controls) {
        if (!controls->explore_weights.empty()) return;
        controls->explore_weights.assign(n, 0.0);
        for (size_t i = n / 2; i < n; ++i) {
          controls->explore_weights[i] = 1.0;
        }
      });
  // Round 0 ran unweighted; from round 1 on only the second half can
  // match, so the first half's rates are bounded by 1/rounds.
  for (size_t i = 0; i < n / 2; ++i) {
    EXPECT_LE(result.match_rate[i], 1.0 / 100.0 + 1e-12);
  }
  double second_half = 0.0;
  for (size_t i = n / 2; i < n; ++i) second_half += result.match_rate[i];
  EXPECT_NEAR(second_half / static_cast<double>(n / 2), 1.0, 0.02);
}

TEST(MatchingMarketTest, WeightedLotterySurvivesExhaustedWeightMass) {
  // More exploration slots than positive-weight workers: after the
  // weighted mass is drawn (subtraction can leave a tiny positive
  // floating-point residue), the remaining slots fill uniformly — the
  // capacity is still honoured every round, with no out-of-bounds draw.
  MatchingMarketOptions options;
  options.num_workers = 10;
  options.capacity_fraction = 0.5;  // 5 slots per round.
  options.rounds = 50;
  options.seed = 25;
  MatchingMarketResult result = RunMatchingMarket(
      MatchingRule::kUniformRandom, options,
      [](const market::RoundSnapshot& snapshot,
         market::RoundControls* controls) {
        if (controls->explore_weights.empty()) {
          // 3 positive-weight workers for 5 slots.
          controls->explore_weights.assign(10, 0.0);
          controls->explore_weights[0] = 0.1;
          controls->explore_weights[1] = 0.2;
          controls->explore_weights[2] = 0.3;
        }
        size_t matched = 0;
        for (uint8_t m : snapshot.matched) matched += m;
        EXPECT_EQ(matched, 5u);
      });
  // The positive-weight workers match every round from round 1 on.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GE(result.match_rate[i], 49.0 / 50.0 - 1e-12);
  }
  EXPECT_NEAR(result.mean_match_rate, 0.5, 1e-12);
}

TEST(MatchingMarketTest, RoundsConsumeIndependentSubStreams) {
  // Doubling the round count must not change the skills (stream 0) —
  // and the library-wide convention gives every round its own child
  // namespace, so this holds by construction.
  MatchingMarketOptions short_run = SmallMarket(24);
  short_run.heterogeneous_skill = true;
  MatchingMarketOptions long_run = short_run;
  long_run.rounds = short_run.rounds * 2;
  MatchingMarketResult a =
      RunMatchingMarket(MatchingRule::kEpsilonGreedy, short_run);
  MatchingMarketResult b =
      RunMatchingMarket(MatchingRule::kEpsilonGreedy, long_run);
  EXPECT_EQ(a.skill, b.skill);
}

// --- Drift monitor ---------------------------------------------------------------

TEST(DriftMonitorTest, FirstIngestGivesNoMeasurement) {
  core::DriftMonitor monitor(0.1);
  EXPECT_FALSE(monitor.Ingest({1.0, 2.0, 3.0}).has_value());
  EXPECT_EQ(monitor.num_steps(), 1u);
}

TEST(DriftMonitorTest, StationaryStreamRaisesNoAlert) {
  core::DriftMonitor monitor(0.2);
  rng::Random random(11);
  for (int step = 0; step < 10; ++step) {
    std::vector<double> sample;
    for (int i = 0; i < 500; ++i) sample.push_back(random.Normal());
    monitor.Ingest(std::move(sample));
  }
  EXPECT_FALSE(monitor.AnyAlert());
  EXPECT_LT(monitor.MaxDriftFromReference(), 0.2);
}

TEST(DriftMonitorTest, ShiftedStreamIsDetected) {
  core::DriftMonitor monitor(0.2);
  rng::Random random(12);
  std::vector<double> base;
  for (int i = 0; i < 500; ++i) base.push_back(random.Normal());
  monitor.Ingest(base);
  std::vector<double> shifted;
  for (int i = 0; i < 500; ++i) shifted.push_back(random.Normal() + 2.0);
  auto measurement = monitor.Ingest(std::move(shifted));
  ASSERT_TRUE(measurement.has_value());
  EXPECT_TRUE(measurement->drift_alert);
  EXPECT_GT(measurement->ks_to_previous, 0.5);
  EXPECT_TRUE(monitor.AnyAlert());
}

TEST(DriftMonitorTest, GradualDriftAccumulatesAgainstReference) {
  // Small per-step shifts that never trip the consecutive alert still
  // accumulate against the reference — the slow feedback-loop drift the
  // closed-loop view makes visible.
  core::DriftMonitor monitor(0.5);
  rng::Random random(13);
  for (int step = 0; step < 12; ++step) {
    std::vector<double> sample;
    for (int i = 0; i < 800; ++i) {
      sample.push_back(random.Normal() + 0.25 * step);
    }
    monitor.Ingest(std::move(sample));
  }
  EXPECT_FALSE(monitor.AnyAlert());  // No single step jumped.
  EXPECT_GT(monitor.MaxDriftFromReference(), 0.8);
}

// --- Impact equalizer -----------------------------------------------------------

TEST(ImpactEqualizerTest, StartsNeutral) {
  core::ImpactEqualizer equalizer(3, 0.5, -1.0, 1.0);
  for (double offset : equalizer.offsets()) EXPECT_DOUBLE_EQ(offset, 0.0);
  EXPECT_FALSE(equalizer.Converged(0.1));
}

TEST(ImpactEqualizerTest, RaisesOffsetsForHighImpactClasses) {
  core::ImpactEqualizer equalizer(2, 0.5, -1.0, 1.0);
  equalizer.Observe({0.8, 0.2});  // Class 0 above average.
  EXPECT_GT(equalizer.offsets()[0], 0.0);
  EXPECT_LT(equalizer.offsets()[1], 0.0);
}

TEST(ImpactEqualizerTest, OffsetsAreClipped) {
  core::ImpactEqualizer equalizer(2, 10.0, -0.5, 0.5);
  equalizer.Observe({1.0, 0.0});
  EXPECT_DOUBLE_EQ(equalizer.offsets()[0], 0.5);
  EXPECT_DOUBLE_EQ(equalizer.offsets()[1], -0.5);
}

TEST(ImpactEqualizerTest, ClosesGapOnMonotoneResponse) {
  // Synthetic monotone plant: class impact m_c = base_c - offset_c.
  core::ImpactEqualizer equalizer(3, 0.4, -2.0, 2.0);
  std::vector<double> base{0.9, 0.5, 0.2};
  double gap = 1.0;
  for (int iteration = 0; iteration < 100; ++iteration) {
    std::vector<double> impacts(3);
    for (size_t c = 0; c < 3; ++c) {
      impacts[c] = base[c] - equalizer.offsets()[c];
    }
    gap = equalizer.Observe(impacts);
  }
  EXPECT_LT(gap, 0.01);
  EXPECT_TRUE(equalizer.Converged(0.01));
  EXPECT_EQ(equalizer.steps(), 100u);
}

TEST(ImpactEqualizerTest, EqualImpactsLeaveOffsetsUnchanged) {
  core::ImpactEqualizer equalizer(2, 0.5, -1.0, 1.0);
  equalizer.Observe({0.4, 0.4});
  EXPECT_DOUBLE_EQ(equalizer.offsets()[0], 0.0);
  EXPECT_DOUBLE_EQ(equalizer.offsets()[1], 0.0);
  EXPECT_TRUE(equalizer.Converged(1e-9));
}

TEST(ImpactEqualizerTest, SweepableInterventionSpecBuildsEqualizers) {
  core::EqualizerInterventionOptions spec;
  EXPECT_FALSE(spec.enabled());  // strength 0 = intervention off.
  spec.strength = 0.5;
  spec.max_offset = 0.8;
  ASSERT_TRUE(spec.enabled());

  // Adverse impact (the default): the high-impact class gets the larger
  // offset (convention: a larger offset reduces impact).
  core::ImpactEqualizer adverse = core::MakeEqualizer(2, spec);
  adverse.Observe({0.9, 0.1});
  EXPECT_GT(adverse.offsets()[0], 0.0);
  EXPECT_LT(adverse.offsets()[1], 0.0);

  // Beneficial impact (match rates): the sign flips, so the
  // under-served class gets the larger offset (e.g. lottery boost).
  spec.beneficial_impact = true;
  core::ImpactEqualizer beneficial = core::MakeEqualizer(2, spec);
  beneficial.Observe({0.9, 0.1});
  EXPECT_LT(beneficial.offsets()[0], 0.0);
  EXPECT_GT(beneficial.offsets()[1], 0.0);
}

TEST(ImpactEqualizerTest, EqualizesTheMatchingMarket) {
  // Use the equalizer to tune per-run exploration until the market's
  // match-rate inequality (impact gap across the worker deciles) falls.
  // One-dimensional control: treat "gini" as the gap and exploration as
  // a single offset steered upward while inequality persists.
  double exploration = 0.05;
  double gini = 1.0;
  for (int iteration = 0; iteration < 12 && gini > 0.1; ++iteration) {
    MatchingMarketOptions options = SmallMarket(100 + iteration);
    options.exploration = exploration;
    gini = RunMatchingMarket(MatchingRule::kEpsilonGreedy, options)
               .match_rate_gini;
    exploration = std::min(1.0, exploration + 0.1 * gini);
  }
  EXPECT_LT(gini, 0.25);
}

}  // namespace
}  // namespace eqimpact
