// Unit tests for the markov module: finite chains, affine maps, affine
// IFS (with exact contraction certificates) and general Markov systems.

#include <cmath>
#include <utility>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "markov/affine_ifs.h"
#include "markov/affine_map.h"
#include "markov/markov_chain.h"
#include "markov/markov_system.h"
#include "rng/random.h"

namespace eqimpact {
namespace {

using linalg::Matrix;
using linalg::Vector;
using markov::AffineIfs;
using markov::AffineMap;
using markov::MarkovChain;
using markov::MarkovSystem;
using markov::TotalVariationDistance;

MarkovChain TwoStateChain(double alpha, double beta) {
  return MarkovChain(Matrix{{1.0 - alpha, alpha}, {beta, 1.0 - beta}});
}

TEST(MarkovChainTest, StationaryDistributionClosedForm) {
  MarkovChain chain = TwoStateChain(0.2, 0.4);
  auto pi = chain.StationaryDistribution();
  ASSERT_TRUE(pi.has_value());
  EXPECT_NEAR((*pi)[0], 0.4 / 0.6, 1e-12);
  EXPECT_NEAR((*pi)[1], 0.2 / 0.6, 1e-12);
}

TEST(MarkovChainTest, IrreducibilityDetection) {
  EXPECT_TRUE(TwoStateChain(0.2, 0.4).IsIrreducible());
  // Absorbing state 1: not irreducible.
  MarkovChain absorbing(Matrix{{0.5, 0.5}, {0.0, 1.0}});
  EXPECT_FALSE(absorbing.IsIrreducible());
}

TEST(MarkovChainTest, PeriodicityDetection) {
  MarkovChain flip(Matrix{{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_TRUE(flip.IsIrreducible());
  EXPECT_EQ(flip.Period(), 2u);
  EXPECT_FALSE(flip.IsAperiodic());
  EXPECT_TRUE(TwoStateChain(0.2, 0.4).IsAperiodic());
}

TEST(MarkovChainTest, PropagateConvergesToStationary) {
  MarkovChain chain = TwoStateChain(0.3, 0.1);
  Vector initial{1.0, 0.0};
  Vector distribution = chain.Propagate(initial, 200);
  auto pi = chain.StationaryDistribution();
  ASSERT_TRUE(pi.has_value());
  EXPECT_TRUE(AllClose(distribution, *pi, 1e-10));
}

TEST(MarkovChainTest, PropagatePreservesProbabilityMass) {
  MarkovChain chain = TwoStateChain(0.3, 0.1);
  Vector distribution = chain.Propagate(Vector{0.25, 0.75}, 17);
  EXPECT_NEAR(distribution.Sum(), 1.0, 1e-12);
}

TEST(MarkovChainTest, SimulatedPathHasCorrectLengthAndStates) {
  MarkovChain chain = TwoStateChain(0.3, 0.1);
  rng::Random random(1);
  auto path = chain.SimulatePath(0, 100, &random);
  EXPECT_EQ(path.size(), 101u);
  for (size_t s : path) EXPECT_LT(s, 2u);
}

TEST(MarkovChainTest, ErgodicTheoremOccupationMatchesStationary) {
  MarkovChain chain = TwoStateChain(0.3, 0.1);
  rng::Random random(2);
  Vector occupation = chain.EmpiricalOccupation(0, 200000, 1000, &random);
  auto pi = chain.StationaryDistribution();
  ASSERT_TRUE(pi.has_value());
  EXPECT_NEAR(occupation[0], (*pi)[0], 0.01);
}

TEST(MarkovChainTest, OccupationIndependentOfInitialState) {
  MarkovChain chain = TwoStateChain(0.25, 0.15);
  rng::Random random_a(3), random_b(4);
  Vector from0 = chain.EmpiricalOccupation(0, 200000, 1000, &random_a);
  Vector from1 = chain.EmpiricalOccupation(1, 200000, 1000, &random_b);
  EXPECT_NEAR(from0[0], from1[0], 0.01);
}

TEST(TotalVariationTest, KnownDistances) {
  EXPECT_DOUBLE_EQ(
      TotalVariationDistance(Vector{1.0, 0.0}, Vector{0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(
      TotalVariationDistance(Vector{0.5, 0.5}, Vector{0.5, 0.5}), 0.0);
  EXPECT_NEAR(TotalVariationDistance(Vector{0.7, 0.3}, Vector{0.5, 0.5}),
              0.2, 1e-12);
}

TEST(AffineMapTest, ScalarApplication) {
  AffineMap map = AffineMap::Scalar(0.5, 1.0);
  Vector image = map(Vector{4.0});
  EXPECT_DOUBLE_EQ(image[0], 3.0);
  EXPECT_DOUBLE_EQ(map.LipschitzConstant(), 0.5);
}

TEST(AffineMapTest, FixedPointOfContraction) {
  AffineMap map = AffineMap::Scalar(0.5, 1.0);
  Vector fixed = map.FixedPoint();
  EXPECT_NEAR(fixed[0], 2.0, 1e-12);
  EXPECT_TRUE(AllClose(map(fixed), fixed, 1e-12));
}

TEST(AffineMapTest, LipschitzConstantIsSpectralNorm) {
  // For a symmetric matrix the spectral norm is the largest |eigenvalue|.
  Matrix a{{0.6, 0.0}, {0.0, -0.8}};
  AffineMap map(a, Vector(2));
  EXPECT_NEAR(map.LipschitzConstant(), 0.8, 1e-8);
}

TEST(AffineMapTest, RotationScalingLipschitz) {
  // 0.9 x rotation: Lipschitz constant 0.9 regardless of angle.
  double c = 0.9 * std::cos(0.7), s = 0.9 * std::sin(0.7);
  AffineMap map(Matrix{{c, -s}, {s, c}}, Vector(2));
  EXPECT_NEAR(map.LipschitzConstant(), 0.9, 1e-8);
}

TEST(AffineIfsTest, AverageContractionFactorIsExact) {
  AffineIfs ifs({AffineMap::Scalar(0.5, 0.0), AffineMap::Scalar(0.9, 0.1)},
                {0.5, 0.5});
  EXPECT_NEAR(ifs.AverageContractionFactor(), 0.7, 1e-12);
  EXPECT_TRUE(ifs.IsAverageContractive());
}

TEST(AffineIfsTest, NonContractiveSystemDetected) {
  AffineIfs ifs({AffineMap::Scalar(1.2, 0.0), AffineMap::Scalar(0.9, 0.1)},
                {0.9, 0.1});
  EXPECT_GT(ifs.AverageContractionFactor(), 1.0);
  EXPECT_FALSE(ifs.IsAverageContractive());
}

TEST(AffineIfsTest, InvariantMeanMatchesTheory) {
  // Two maps on R: w1 = 0.5x, w2 = 0.5x + 1, p = (1/2, 1/2).
  // Mean m satisfies m = 0.5 m + 0.5, so m = 1.
  AffineIfs ifs({AffineMap::Scalar(0.5, 0.0), AffineMap::Scalar(0.5, 1.0)},
                {0.5, 0.5});
  EXPECT_NEAR(ifs.InvariantMean()[0], 1.0, 1e-12);
}

TEST(AffineIfsTest, TimeAverageMatchesInvariantMean) {
  AffineIfs ifs({AffineMap::Scalar(0.5, 0.0), AffineMap::Scalar(0.5, 1.0)},
                {0.5, 0.5});
  rng::Random random(7);
  double average = ifs.TimeAverage(
      Vector{10.0}, 200000, 100, [](const Vector& x) { return x[0]; },
      &random);
  EXPECT_NEAR(average, 1.0, 0.01);
}

TEST(AffineIfsTest, EltonCheckPassesForContractiveSystem) {
  AffineIfs ifs({AffineMap::Scalar(0.5, 0.0), AffineMap::Scalar(0.5, 1.0)},
                {0.5, 0.5});
  rng::Random random(8);
  auto report = VerifyEltonConvergence(
      ifs, {Vector{-50.0}, Vector{0.0}, Vector{50.0}}, 100000, 100,
      [](const Vector& x) { return x[0]; }, 0.05, &random);
  EXPECT_TRUE(report.initial_condition_independent);
  EXPECT_EQ(report.time_averages.size(), 3u);
}

TEST(AffineIfsTest, EltonCheckFailsForExpansiveDeterministicSystem) {
  // A single expansive map: trajectories diverge at a rate set by the
  // initial condition, so time averages cannot agree.
  AffineIfs ifs({AffineMap::Scalar(1.05, 0.0)}, {1.0});
  rng::Random random(9);
  auto report = VerifyEltonConvergence(
      ifs, {Vector{1.0}, Vector{2.0}}, 500, 0,
      [](const Vector& x) { return x[0]; }, 0.05, &random);
  EXPECT_FALSE(report.initial_condition_independent);
}

TEST(AffineIfsTest, TrajectoryLength) {
  AffineIfs ifs({AffineMap::Scalar(0.5, 1.0)}, {1.0});
  rng::Random random(10);
  auto path = ifs.Trajectory(Vector{0.0}, 10, &random);
  EXPECT_EQ(path.size(), 11u);
}

// --- MarkovSystem ----------------------------------------------------------

// A two-cell Markov system on R: cell 0 is x < 0, cell 1 is x >= 0.
// Edges map across the cells with constant probabilities.
MarkovSystem MakeTwoCellSystem() {
  MarkovSystem system(
      2, [](const Vector& x) -> size_t { return x[0] < 0.0 ? 0 : 1; });
  // From cell 0: either stay negative (contract) or jump positive.
  system.AddEdge(
      0, 0, [](const Vector& x) { return Vector{0.5 * x[0] - 0.1}; },
      [](const Vector&) { return 0.5; });
  system.AddEdge(
      0, 1, [](const Vector& x) { return Vector{-0.5 * x[0]}; },
      [](const Vector&) { return 0.5; });
  // From cell 1: either stay positive (contract) or jump negative.
  system.AddEdge(
      1, 1, [](const Vector& x) { return Vector{0.5 * x[0] + 0.1}; },
      [](const Vector&) { return 0.7; });
  system.AddEdge(
      1, 0, [](const Vector& x) { return Vector{-0.5 * x[0] - 0.1}; },
      [](const Vector&) { return 0.3; });
  return system;
}

TEST(MarkovSystemTest, CellClassification) {
  MarkovSystem system = MakeTwoCellSystem();
  EXPECT_EQ(system.CellOf(Vector{-1.0}), 0u);
  EXPECT_EQ(system.CellOf(Vector{1.0}), 1u);
  EXPECT_EQ(system.num_vertices(), 2u);
  EXPECT_EQ(system.num_edges(), 4u);
}

TEST(MarkovSystemTest, ProbabilitiesNormalised) {
  MarkovSystem system = MakeTwoCellSystem();
  EXPECT_TRUE(system.ProbabilitiesNormalisedAt(Vector{-2.0}));
  EXPECT_TRUE(system.ProbabilitiesNormalisedAt(Vector{3.0}));
}

TEST(MarkovSystemTest, StepRespectsPartition) {
  MarkovSystem system = MakeTwoCellSystem();
  rng::Random random(20);
  Vector x{-1.0};
  for (int k = 0; k < 1000; ++k) {
    x = system.Step(x, &random);
    // Step CHECK-fails internally if a map violates its target cell; the
    // state must also stay bounded for this contractive system.
    EXPECT_LT(std::fabs(x[0]), 10.0);
  }
}

TEST(MarkovSystemTest, GraphCertificates) {
  MarkovSystem system = MakeTwoCellSystem();
  EXPECT_TRUE(system.IsIrreducible());
  EXPECT_TRUE(system.IsAperiodic());  // Self-loops kill periodicity.
}

TEST(MarkovSystemTest, PeriodicSystemDetected) {
  // Strict alternation between cells: period 2, not primitive.
  MarkovSystem system(
      2, [](const Vector& x) -> size_t { return x[0] < 0.0 ? 0 : 1; });
  system.AddEdge(
      0, 1, [](const Vector& x) { return Vector{-x[0]}; },
      [](const Vector&) { return 1.0; });
  system.AddEdge(
      1, 0, [](const Vector& x) { return Vector{-x[0] - 1.0}; },
      [](const Vector&) { return 1.0; });
  EXPECT_TRUE(system.IsIrreducible());
  EXPECT_FALSE(system.IsAperiodic());
}

TEST(MarkovSystemTest, TimeAverageIsInitialConditionIndependent) {
  MarkovSystem system = MakeTwoCellSystem();
  rng::Random random(21);
  auto f = [](const Vector& x) { return x[0]; };
  double from_negative =
      system.TimeAverage(Vector{-5.0}, 200000, 500, f, &random);
  double from_positive =
      system.TimeAverage(Vector{5.0}, 200000, 500, f, &random);
  EXPECT_NEAR(from_negative, from_positive, 0.02);
}

TEST(MarkovSystemTest, MarkovOperatorAveragesOverEdges) {
  MarkovSystem system = MakeTwoCellSystem();
  // (P f)(x) with f = identity at x = 1 (cell 1):
  // 0.7 * (0.5*1 + 0.1) + 0.3 * (-0.5*1 - 0.1) = 0.42 - 0.18 = 0.24.
  double value = system.ApplyOperator(
      [](const Vector& x) { return x[0]; }, Vector{1.0});
  EXPECT_NEAR(value, 0.24, 1e-12);
}

TEST(MarkovSystemTest, ContractionEstimateBelowOneForContractiveMaps) {
  MarkovSystem system = MakeTwoCellSystem();
  rng::Random random(22);
  double factor = system.EstimateContractionFactor(
      [](rng::Random* r) {
        double base = r->UniformDouble(0.5, 5.0);
        return std::make_pair(Vector{base}, Vector{base + 0.1});
      },
      200, &random);
  EXPECT_LT(factor, 1.0);
  EXPECT_GT(factor, 0.0);
}

// --- Parameterized sweeps ---------------------------------------------------

class ContractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(ContractionSweep, TimeAverageMatchesExactInvariantMean) {
  const double slope = GetParam();
  AffineIfs ifs({AffineMap::Scalar(slope, 0.0),
                 AffineMap::Scalar(slope, 1.0 - slope)},
                {0.5, 0.5});
  ASSERT_TRUE(ifs.IsAverageContractive());
  // Exact mean: m = slope * m + (1 - slope)/2 => m = 1/2.
  EXPECT_NEAR(ifs.InvariantMean()[0], 0.5, 1e-12);
  rng::Random random(static_cast<uint64_t>(slope * 1000));
  double average = ifs.TimeAverage(
      Vector{7.0}, 100000, 200, [](const Vector& x) { return x[0]; },
      &random);
  EXPECT_NEAR(average, 0.5, 0.02) << "slope " << slope;
}

INSTANTIATE_TEST_SUITE_P(Slopes, ContractionSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

class ChainMixSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChainMixSweep, PropagationContractsInTotalVariation) {
  // For any positive two-state chain, consecutive propagated distributions
  // approach each other: TV(mu P^k, pi) is non-increasing in k.
  double alpha = GetParam();
  MarkovChain chain = TwoStateChain(alpha, 0.5 * alpha);
  auto pi = chain.StationaryDistribution();
  ASSERT_TRUE(pi.has_value());
  Vector mu{1.0, 0.0};
  double previous = TotalVariationDistance(mu, *pi);
  // The two-state chain contracts TV by |1 - alpha - beta| per step; 120
  // steps suffice even for the slowest sweep point (0.85^120 ~ 3e-9).
  for (int k = 0; k < 120; ++k) {
    mu = chain.Propagate(mu, 1);
    double current = TotalVariationDistance(mu, *pi);
    EXPECT_LE(current, previous + 1e-12) << "alpha " << alpha << " k " << k;
    previous = current;
  }
  EXPECT_LT(previous, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ChainMixSweep,
                         ::testing::Values(0.1, 0.2, 0.4, 0.6, 0.8));

}  // namespace
}  // namespace eqimpact
