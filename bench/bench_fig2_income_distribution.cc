// Reproduces paper Figure 2: the 2020 annual income distribution of
// "BLACK ALONE", "WHITE ALONE" and "ASIAN ALONE" households over the nine
// CPS Table A-2 brackets, plus a sampling cross-check.
//
// SUBSTITUTION: the real CPS CSV is unavailable offline; the embedded
// table is calibrated to the figure (see DESIGN.md). The headline
// features the paper calls out — almost 20% of ASIAN ALONE households
// above $200K, most BLACK ALONE households below $75K — must reproduce.

#include <cstdio>
#include <vector>

#include "credit/income_model.h"
#include "credit/race.h"
#include "rng/random.h"
#include "sim/text_table.h"

namespace {

using eqimpact::credit::BracketLabel;
using eqimpact::credit::IncomeModel;
using eqimpact::credit::kNumIncomeBrackets;
using eqimpact::credit::kNumRaces;
using eqimpact::credit::Race;
using eqimpact::credit::RaceName;

}  // namespace

int main() {
  std::printf(
      "=== Figure 2: 2020 income distribution by race (percent) ===\n\n");

  IncomeModel model;
  eqimpact::sim::TextTable table(
      {"Bracket ($K)", RaceName(Race::kBlackAlone),
       RaceName(Race::kWhiteAlone), RaceName(Race::kAsianAlone)});
  std::vector<std::vector<double>> shares;
  for (size_t r = 0; r < kNumRaces; ++r) {
    shares.push_back(model.BracketShares(2020, static_cast<Race>(r)));
  }
  for (size_t b = 0; b < kNumIncomeBrackets; ++b) {
    table.AddRow({BracketLabel(b),
                  eqimpact::sim::TextTable::Cell(100.0 * shares[0][b], 1),
                  eqimpact::sim::TextTable::Cell(100.0 * shares[1][b], 1),
                  eqimpact::sim::TextTable::Cell(100.0 * shares[2][b], 1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Sampling cross-check: empirical bracket frequencies from the actual
  // income sampler must match the table (this is what the closed loop
  // consumes).
  std::printf("Sampling cross-check (100000 draws per race, 2020):\n");
  eqimpact::rng::Random random(2020);
  bool all_ok = true;
  for (size_t r = 0; r < kNumRaces; ++r) {
    std::vector<int> counts(kNumIncomeBrackets, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i) {
      ++counts[model.SampleBracket(2020, static_cast<Race>(r), &random)];
    }
    double worst = 0.0;
    for (size_t b = 0; b < kNumIncomeBrackets; ++b) {
      double gap =
          std::abs(static_cast<double>(counts[b]) / draws - shares[r][b]);
      worst = std::max(worst, gap);
    }
    std::printf("  %-12s max |empirical - table| = %.4f\n",
                RaceName(static_cast<Race>(r)).c_str(), worst);
    all_ok = all_ok && worst < 0.01;
  }

  std::printf("\nshape check: ASIAN ALONE share above $200K ~ 20%%: %.1f%%\n",
              100.0 * shares[2].back());
  double black_below_75 = shares[0][0] + shares[0][1] + shares[0][2] +
                          shares[0][3] + shares[0][4];
  std::printf("shape check: BLACK ALONE share below $75K > 50%%:  %.1f%%\n",
              100.0 * black_below_75);
  std::printf("shape check: sampling matches table:              %s\n",
              all_ok ? "yes" : "NO");
  return 0;
}
