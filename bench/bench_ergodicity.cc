// Reproduces the paper's Section VI guarantee demonstrations:
//
//  (a) strongly connected + primitive Markov system  => unique attractive
//      invariant measure (certificate + empirical Elton check);
//  (b) periodic / reducible systems                  => certificate
//      refuses, and time averages do depend on initial conditions;
//  (c) the Fioravanti et al. (2019) phenomenon: integral feedback with
//      hysteretic agents regulates the aggregate but destroys unique
//      ergodicity (per-agent time averages depend on initial conditions),
//      while a stable randomized broadcast keeps the loop uniquely
//      ergodic and equal-impact;
//  (d) ablations of the credit loop's design choices: filter forgetting
//      factor and training-window protocol.

#include <cstdio>
#include <vector>

#include "core/ergodicity.h"
#include "credit/credit_loop.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "markov/affine_ifs.h"
#include "markov/affine_map.h"
#include "markov/coupling.h"
#include "markov/markov_chain.h"
#include "markov/ulam.h"
#include "rng/random.h"
#include "sim/ensemble_control.h"
#include "sim/text_table.h"
#include "stats/time_series.h"

namespace {

using eqimpact::linalg::Matrix;
using eqimpact::linalg::Vector;

void SectionA() {
  std::printf("--- (a) primitive chain: unique attractive measure ---\n");
  eqimpact::markov::MarkovChain chain(
      Matrix{{0.6, 0.3, 0.1}, {0.2, 0.5, 0.3}, {0.1, 0.2, 0.7}});
  eqimpact::core::ErgodicityCertificate certificate =
      eqimpact::core::CertifyMarkovChain(chain);
  std::printf("certificate: %s\n", certificate.Summary().c_str());

  auto pi = chain.StationaryDistribution();
  std::printf("stationary distribution: %s\n", pi->ToString().c_str());

  eqimpact::rng::Random random(1);
  for (size_t start : {0u, 1u, 2u}) {
    Vector occupation = chain.EmpiricalOccupation(start, 200000, 1000,
                                                  &random);
    std::printf("empirical occupation from state %zu: %s (TV to pi: %.4f)\n",
                start, occupation.ToString().c_str(),
                eqimpact::markov::TotalVariationDistance(occupation, *pi));
  }
  std::printf("\n");
}

void SectionB() {
  std::printf("--- (b) certificates refuse non-ergodic systems ---\n");
  eqimpact::markov::MarkovChain periodic(Matrix{{0.0, 1.0}, {1.0, 0.0}});
  std::printf("periodic two-cycle:    %s\n",
              eqimpact::core::CertifyMarkovChain(periodic).Summary().c_str());
  eqimpact::markov::MarkovChain reducible(Matrix{{1.0, 0.0}, {0.5, 0.5}});
  std::printf("absorbing (reducible): %s\n",
              eqimpact::core::CertifyMarkovChain(reducible).Summary().c_str());

  // Contractive vs expansive IFS, with the empirical Elton check.
  eqimpact::markov::AffineIfs contractive(
      {eqimpact::markov::AffineMap::Scalar(0.5, 0.0),
       eqimpact::markov::AffineMap::Scalar(0.5, 1.0)},
      {0.5, 0.5});
  std::printf("contractive IFS:       %s\n",
              eqimpact::core::CertifyAffineIfs(contractive).Summary().c_str());
  eqimpact::rng::Random random(2);
  eqimpact::markov::EltonCheckResult elton = VerifyEltonConvergence(
      contractive, {Vector{-100.0}, Vector{0.0}, Vector{100.0}}, 100000, 100,
      [](const Vector& x) { return x[0]; }, 0.05, &random);
  std::printf(
      "Elton check from x0 in {-100, 0, 100}: averages %.4f / %.4f / %.4f "
      "(gap %.4f) => IC-independent: %s\n",
      elton.time_averages[0], elton.time_averages[1], elton.time_averages[2],
      elton.max_gap, elton.initial_condition_independent ? "yes" : "NO");
  std::printf("\n");
}

void SectionC() {
  std::printf(
      "--- (c) ensemble control: stable vs integral (Fioravanti et al.) "
      "---\n");
  eqimpact::sim::EnsembleOptions options;
  options.num_agents = 10;
  options.target_fraction = 0.5;
  options.steps = 20000;
  options.burn_in = 2000;

  auto pattern = [](size_t n, bool first_half) {
    std::vector<bool> on(n, false);
    for (size_t i = 0; i < n / 2; ++i) on[first_half ? i : n / 2 + i] = true;
    return on;
  };

  eqimpact::sim::TextTable table({"controller", "initial ON set",
                                  "aggregate avg", "agent-0 avg",
                                  "agent-9 avg", "coincidence gap"});
  // The four (initial set, controller) runs are independent trials;
  // dispatch them as one study through the parallel runtime, with
  // per-run seeds derived from the study's master seed.
  std::vector<eqimpact::sim::EnsembleStudySpec> specs;
  for (bool first_half : {true, false}) {
    for (auto kind :
         {eqimpact::sim::EnsembleControllerKind::kStableRandomized,
          eqimpact::sim::EnsembleControllerKind::kIntegralHysteresis}) {
      eqimpact::sim::EnsembleStudySpec spec;
      spec.kind = kind;
      spec.initial_on = pattern(options.num_agents, first_half);
      spec.initial_signal = 0.5;
      // Paired design: both controllers see the identical noise stream
      // for a given initial ON set, so the table's controller contrast
      // is not confounded by the noise realization.
      spec.seed_index = first_half ? 0 : 1;
      specs.push_back(spec);
    }
  }
  eqimpact::sim::EnsembleStudyOptions study;
  study.ensemble = options;
  study.master_seed = 31;
  std::vector<eqimpact::sim::EnsembleRunResult> runs =
      RunEnsembleStudy(specs, study);
  for (size_t i = 0; i < specs.size(); ++i) {
    const eqimpact::sim::EnsembleRunResult& run = runs[i];
    table.AddRow(
        {specs[i].kind ==
                 eqimpact::sim::EnsembleControllerKind::kStableRandomized
             ? "stable-randomized"
             : "integral-hysteresis",
         i < 2 ? "agents 0-4" : "agents 5-9",
         eqimpact::sim::TextTable::Cell(run.aggregate_average, 3),
         eqimpact::sim::TextTable::Cell(run.per_agent_average[0], 3),
         eqimpact::sim::TextTable::Cell(run.per_agent_average[9], 3),
         eqimpact::sim::TextTable::Cell(
             eqimpact::stats::CoincidenceGap(run.per_agent_average), 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "reading: both controllers regulate the aggregate to 0.5, but the\n"
      "integral-hysteresis loop freezes whichever agents started ON\n"
      "(agent averages 0 or 1 depending on the initial set) — the loss of\n"
      "ergodicity; the stable randomized broadcast gives every agent the\n"
      "same 0.5 time average from any start — equal impact.\n\n");
}

void SectionD() {
  std::printf("--- (d) credit-loop design ablations ---\n");
  eqimpact::sim::TextTable table({"variant", "final BLACK", "final WHITE",
                                  "final ASIAN", "race gap"});
  struct Variant {
    const char* name;
    double forgetting;
    bool accumulate;
  };
  for (const Variant& variant :
       {Variant{"paper (accumulate, ff=1.0)", 1.0, true},
        Variant{"forgetting filter ff=0.9", 0.9, true},
        Variant{"forgetting filter ff=0.7", 0.7, true},
        Variant{"train on last year only", 1.0, false}}) {
    eqimpact::credit::CreditLoopOptions options;
    options.num_users = 1000;
    options.seed = 99;
    options.forgetting_factor = variant.forgetting;
    options.accumulate_history = variant.accumulate;
    eqimpact::credit::CreditLoopResult result =
        eqimpact::credit::CreditScoringLoop(options).Run();
    std::vector<double> finals;
    for (size_t r = 0; r < eqimpact::credit::kNumRaces; ++r) {
      finals.push_back(result.race_adr[r].back());
    }
    table.AddRow({variant.name,
                  eqimpact::sim::TextTable::Cell(finals[0], 4),
                  eqimpact::sim::TextTable::Cell(finals[1], 4),
                  eqimpact::sim::TextTable::Cell(finals[2], 4),
                  eqimpact::sim::TextTable::Cell(
                      eqimpact::stats::CoincidenceGap(finals), 4)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "reading: the equal-impact conclusion is robust to the filter and\n"
      "training-window choices; forgetting filters track recent behaviour\n"
      "and keep the race gap small.\n");
}

void SectionE() {
  std::printf("--- (e) the Markov operator P*, discretised (Ulam) ---\n");
  // The appendix's adjoint operator P* acting on measures, made
  // computable: (P*)^n nu -> mu for every nu, as matrix powers.
  eqimpact::markov::AffineIfs ifs(
      {eqimpact::markov::AffineMap::Scalar(0.5, 0.0),
       eqimpact::markov::AffineMap::Scalar(0.5, 0.5)},
      {0.5, 0.5});
  eqimpact::markov::UlamApproximation ulam(ifs, 0.0, 1.0, 64);
  auto pi = ulam.InvariantCellMeasure();
  std::printf("invariant mean via P*: %.4f (exact: %.4f)\n",
              *ulam.InvariantMean(), ifs.InvariantMean()[0]);
  Vector left(64), right(64);
  left[0] = 1.0;
  right[63] = 1.0;
  for (unsigned k : {1u, 5u, 20u, 60u}) {
    double tv_left = eqimpact::markov::TotalVariationDistance(
        ulam.Propagate(left, k), *pi);
    double tv_right = eqimpact::markov::TotalVariationDistance(
        ulam.Propagate(right, k), *pi);
    std::printf("  ||(P*)^%-2u nu - mu||_TV: from left %.4f, from right "
                "%.4f\n",
                k, tv_left, tv_right);
  }
  std::printf("reading: both point masses converge to the same invariant "
              "measure — attractivity.\n\n");
}

void SectionF() {
  std::printf("--- (f) coupling evidence (Hairer-style, future work) ---\n");
  eqimpact::rng::Random random(7);
  eqimpact::markov::AffineIfs contractive(
      {eqimpact::markov::AffineMap::Scalar(0.5, 0.0),
       eqimpact::markov::AffineMap::Scalar(0.5, 1.0)},
      {0.5, 0.5});
  eqimpact::markov::CouplingResult good = SynchronousCoupling(
      contractive, Vector{-100.0}, Vector{100.0}, 100, 1e-9, &random);
  std::printf("contractive IFS: coupled=%s at step %zu, per-step rate "
              "%.3f\n",
              good.coupled ? "yes" : "no", good.coupling_time,
              good.per_step_rate);

  eqimpact::markov::AffineIfs expansive(
      {eqimpact::markov::AffineMap::Scalar(1.05, 0.0)}, {1.0});
  eqimpact::markov::CouplingResult bad = SynchronousCoupling(
      expansive, Vector{0.0}, Vector{1.0}, 100, 1e-9, &random);
  std::printf("expansive map:   coupled=%s, final distance %.2f, rate "
              "%.3f\n",
              bad.coupled ? "yes" : "no", bad.final_distance,
              bad.per_step_rate);
  std::printf("reading: a contracting synchronous coupling is constructive "
              "evidence for unique\nergodicity; its failure is the "
              "contrapositive direction the paper's conclusion asks "
              "about.\n");
}

}  // namespace

int main() {
  std::printf("=== Section VI: ergodicity guarantees and their loss ===\n\n");
  SectionA();
  SectionB();
  SectionC();
  SectionD();
  std::printf("\n");
  SectionE();
  SectionF();
  return 0;
}
