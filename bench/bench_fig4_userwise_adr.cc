// Reproduces paper Figure 4: the user-wise average default rates
// ADR_i(k) for all users from five trials (5 x 1000 trajectories),
// summarised per race as a quantile fan (min / 5% / median / 95% / max),
// since the paper plots the raw curve bundle coloured by race.
//
// The fan is read from the streaming pooled-ADR accumulator (min/max
// exact, inner quantiles interpolated from its 256-bin histogram), so
// the bench runs in memory bounded by the histogram — the same code path
// scales to 10^6-user cohorts without materializing a single per-user
// series.
//
// Expected shape (paper): the bundle starts spread over [0, 1] right
// after the approve-all warm-up (low-income users default immediately,
// giving ADR 1 for some), then the curves "dwindle to a similar level":
// the bundle tightens towards a low common band by 2020.

#include <cstdio>
#include <vector>

#include "credit/race.h"
#include "sim/multi_trial.h"
#include "sim/text_table.h"
#include "stats/adr_accumulator.h"

namespace {

using eqimpact::credit::kNumRaces;
using eqimpact::credit::Race;
using eqimpact::credit::RaceName;

}  // namespace

int main() {
  std::printf(
      "=== Figure 4: user-wise ADR_i(k) bundle (5 trials x 1000 users) "
      "===\n\n");

  eqimpact::sim::MultiTrialOptions options;
  options.loop.num_users = 1000;
  options.num_trials = 5;
  options.master_seed = 42;
  options.adr_bins = 256;  // Fine bins: quantile error <= 1/256.
  eqimpact::sim::MultiTrialResult result =
      eqimpact::sim::RunMultiTrial(options);
  const eqimpact::stats::AdrAccumulator& adr = result.pooled_adr;

  for (size_t r = 0; r < kNumRaces; ++r) {
    std::printf("%s (%lld trajectories)\n",
                RaceName(static_cast<Race>(r)).c_str(),
                static_cast<long long>(adr.count(0, r)));
    eqimpact::sim::TextTable table(
        {"Year", "min", "q05", "median", "q95", "max"});
    for (size_t k = 0; k < result.years.size(); ++k) {
      table.AddRow({eqimpact::sim::TextTable::Cell(result.years[k]),
                    eqimpact::sim::TextTable::Cell(
                        adr.ApproxQuantile(k, r, 0.0), 3),
                    eqimpact::sim::TextTable::Cell(
                        adr.ApproxQuantile(k, r, 0.05), 3),
                    eqimpact::sim::TextTable::Cell(
                        adr.ApproxQuantile(k, r, 0.5), 3),
                    eqimpact::sim::TextTable::Cell(
                        adr.ApproxQuantile(k, r, 0.95), 3),
                    eqimpact::sim::TextTable::Cell(
                        adr.ApproxQuantile(k, r, 1.0), 3)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  // Shape checks: the 5%-95% band tightens from the early years to 2020,
  // and the final median is low for every race.
  bool tightens = true;
  bool low_median = true;
  const size_t early = 2;
  const size_t late = result.years.size() - 1;
  for (size_t r = 0; r < kNumRaces; ++r) {
    double early_band = adr.ApproxQuantile(early, r, 0.95) -
                        adr.ApproxQuantile(early, r, 0.05);
    double late_band = adr.ApproxQuantile(late, r, 0.95) -
                       adr.ApproxQuantile(late, r, 0.05);
    tightens = tightens && late_band <= early_band;
    low_median = low_median && adr.ApproxQuantile(late, r, 0.5) < 0.12;
  }
  std::printf("shape check: 5%%-95%% band tightens from 2004 to 2020: %s\n",
              tightens ? "yes" : "NO");
  std::printf("shape check: final median ADR low for every race:     %s\n",
              low_median ? "yes" : "NO");
  return 0;
}
