// Reproduces paper Figure 4: the user-wise average default rates
// ADR_i(k) for all users from five trials (5 x 1000 trajectories),
// summarised per race as a quantile fan (min / 5% / median / 95% / max),
// since the paper plots the raw curve bundle coloured by race.
//
// Expected shape (paper): the bundle starts spread over [0, 1] right
// after the approve-all warm-up (low-income users default immediately,
// giving ADR 1 for some), then the curves "dwindle to a similar level":
// the bundle tightens towards a low common band by 2020.

#include <cstdio>
#include <vector>

#include "credit/race.h"
#include "sim/multi_trial.h"
#include "sim/text_table.h"
#include "stats/aggregate.h"
#include "stats/time_series.h"

namespace {

using eqimpact::credit::kNumRaces;
using eqimpact::credit::Race;
using eqimpact::credit::RaceName;

}  // namespace

int main() {
  std::printf(
      "=== Figure 4: user-wise ADR_i(k) bundle (5 trials x 1000 users) "
      "===\n\n");

  eqimpact::sim::MultiTrialOptions options;
  options.loop.num_users = 1000;
  options.num_trials = 5;
  options.master_seed = 42;
  eqimpact::sim::MultiTrialResult result = eqimpact::sim::RunMultiTrial(options);

  const std::vector<double> probabilities{0.0, 0.05, 0.5, 0.95, 1.0};
  for (size_t r = 0; r < kNumRaces; ++r) {
    std::vector<std::vector<double>> bundle;
    for (size_t i = 0; i < result.pooled_user_adr.size(); ++i) {
      if (result.pooled_races[i] == static_cast<Race>(r)) {
        bundle.push_back(result.pooled_user_adr[i]);
      }
    }
    std::printf("%s (%zu trajectories)\n",
                RaceName(static_cast<Race>(r)).c_str(), bundle.size());
    std::vector<std::vector<double>> fan =
        eqimpact::stats::QuantileFan(bundle, probabilities);
    eqimpact::sim::TextTable table(
        {"Year", "min", "q05", "median", "q95", "max"});
    for (size_t k = 0; k < result.years.size(); ++k) {
      table.AddRow({eqimpact::sim::TextTable::Cell(result.years[k]),
                    eqimpact::sim::TextTable::Cell(fan[0][k], 3),
                    eqimpact::sim::TextTable::Cell(fan[1][k], 3),
                    eqimpact::sim::TextTable::Cell(fan[2][k], 3),
                    eqimpact::sim::TextTable::Cell(fan[3][k], 3),
                    eqimpact::sim::TextTable::Cell(fan[4][k], 3)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  // Shape checks: the 5%-95% band tightens from the early years to 2020,
  // and the final median is low for every race.
  bool tightens = true;
  bool low_median = true;
  for (size_t r = 0; r < kNumRaces; ++r) {
    std::vector<std::vector<double>> bundle;
    for (size_t i = 0; i < result.pooled_user_adr.size(); ++i) {
      if (result.pooled_races[i] == static_cast<Race>(r)) {
        bundle.push_back(result.pooled_user_adr[i]);
      }
    }
    std::vector<std::vector<double>> fan =
        eqimpact::stats::QuantileFan(bundle, {0.05, 0.5, 0.95});
    size_t early = 2;
    size_t late = result.years.size() - 1;
    double early_band = fan[2][early] - fan[0][early];
    double late_band = fan[2][late] - fan[0][late];
    tightens = tightens && late_band <= early_band;
    low_median = low_median && fan[1][late] < 0.12;
  }
  std::printf("shape check: 5%%-95%% band tightens from 2004 to 2020: %s\n",
              tightens ? "yes" : "NO");
  std::printf("shape check: final median ADR low for every race:     %s\n",
              low_median ? "yes" : "NO");
  return 0;
}
