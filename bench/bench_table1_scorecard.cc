// Reproduces paper Table I: the scorecard fitted inside the closed loop,
// its factor scores, and the worked example (income $50K, ADR 0.1 =>
// score -8.17 * 0.1 + 5.77 = 4.953 > 0.4 => approve).
//
// The paper's coefficients (-8.17, +5.77) come from one retraining step of
// the authors' loop; ours come from the reproduction loop, so the exact
// magnitudes differ while the structure — a negative History factor, a
// positive Income factor, and an approval at cut-off 0.4 for the worked
// example — must match. EXPERIMENTS.md records both.

#include <cstdio>

#include "credit/credit_loop.h"
#include "linalg/vector.h"
#include "ml/scorecard.h"
#include "sim/text_table.h"

namespace {

using eqimpact::credit::CreditLoopOptions;
using eqimpact::credit::CreditScoringLoop;
using eqimpact::credit::ScorecardSnapshot;

}  // namespace

int main() {
  std::printf("=== Table I: scorecard learned inside the closed loop ===\n\n");

  CreditLoopOptions options;
  options.num_users = 1000;
  options.seed = 2024;
  CreditScoringLoop loop(options);
  eqimpact::credit::CreditLoopResult result = loop.Run();

  if (result.scorecards.empty()) {
    std::printf("no scorecard was trained (unexpected)\n");
    return 1;
  }

  // The paper's Table I shows one representative scorecard; print the one
  // in force at the final retraining step, plus the full history so the
  // retraining drift ("the scorecard pi(k) can vary in time steps") is
  // visible.
  const ScorecardSnapshot& final_card = result.scorecards.back();
  eqimpact::ml::Scorecard scorecard(
      {{"History", "x Average Default Rate", final_card.history_weight},
       {"Income", "> $15K (income code)", final_card.income_weight}},
      options.cutoff, final_card.intercept);
  std::printf("%s\n", scorecard.ToTableString().c_str());

  std::printf("Paper's example scorecard: History -8.17, Income +5.77\n\n");

  // Worked example from the paper's Table I caption.
  eqimpact::linalg::Vector user{0.1, 1.0};  // ADR 0.1, income $50K (code 1).
  double score = scorecard.Score(user);
  std::printf("Worked example: income $50K, ADR 0.1\n");
  std::printf("  score = %+.2f x 0.1 %+.2f = %.4f\n",
              final_card.history_weight, final_card.income_weight, score);
  std::printf("  decision at cut-off %.1f: %s\n", options.cutoff,
              scorecard.Approve(user) ? "APPROVE" : "DECLINE");
  std::printf("  (paper: -8.17 x 0.1 + 5.77 = 4.953 > 0.4 => approve)\n\n");

  std::printf("Scorecard per retraining year:\n");
  eqimpact::sim::TextTable table({"Year", "History", "Income", "Base"});
  for (const ScorecardSnapshot& card : result.scorecards) {
    table.AddRow({eqimpact::sim::TextTable::Cell(card.year),
                  eqimpact::sim::TextTable::Cell(card.history_weight, 3),
                  eqimpact::sim::TextTable::Cell(card.income_weight, 3),
                  eqimpact::sim::TextTable::Cell(card.intercept, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Shape assertions mirroring the paper's qualitative claims.
  bool history_negative = true;
  bool income_positive = true;
  for (const ScorecardSnapshot& card : result.scorecards) {
    history_negative = history_negative && card.history_weight < 0.0;
    income_positive = income_positive && card.income_weight > 0.0;
  }
  std::printf("shape check: History factor negative in every year: %s\n",
              history_negative ? "yes" : "NO");
  std::printf("shape check: Income factor positive in every year:  %s\n",
              income_positive ? "yes" : "NO");
  std::printf("shape check: worked example approved:               %s\n",
              scorecard.Approve(user) ? "yes" : "NO");
  return 0;
}
