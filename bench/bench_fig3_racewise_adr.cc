// Reproduces paper Figure 3: race-wise average default rates ADR_s(k)
// over 2002-2020, mean +/- one standard deviation across five trials of
// N = 1000 users each, with the paper's full protocol (two approve-all
// warm-up years, yearly scorecard retraining, cut-off 0.4).
//
// Expected shape (paper): all three races' curves start at a low level,
// are perturbed over the first years, and "dwindle to a similar level"
// in the band ~0.02-0.08, with overlapping error shades.

#include <cstdio>
#include <vector>

#include "credit/race.h"
#include "sim/multi_trial.h"
#include "sim/text_table.h"
#include "stats/time_series.h"

namespace {

using eqimpact::credit::kNumRaces;
using eqimpact::credit::Race;
using eqimpact::credit::RaceName;

}  // namespace

int main() {
  std::printf(
      "=== Figure 3: race-wise ADR_s(k), mean +/- std over 5 trials ===\n\n");

  eqimpact::sim::MultiTrialOptions options;
  options.loop.num_users = 1000;
  options.num_trials = 5;
  options.master_seed = 42;
  eqimpact::sim::MultiTrialResult result = eqimpact::sim::RunMultiTrial(options);

  eqimpact::sim::TextTable table(
      {"Year", "BLACK mean", "BLACK std", "WHITE mean", "WHITE std",
       "ASIAN mean", "ASIAN std"});
  for (size_t k = 0; k < result.years.size(); ++k) {
    std::vector<std::string> row{
        eqimpact::sim::TextTable::Cell(result.years[k])};
    for (size_t r = 0; r < kNumRaces; ++r) {
      row.push_back(eqimpact::sim::TextTable::Cell(
          result.race_envelopes[r].mean[k], 4));
      row.push_back(eqimpact::sim::TextTable::Cell(
          result.race_envelopes[r].std_dev[k], 4));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  // Shape checks against the paper's description.
  std::vector<double> final_levels;
  bool all_in_band = true;
  for (size_t r = 0; r < kNumRaces; ++r) {
    double level = result.race_envelopes[r].mean.back();
    final_levels.push_back(level);
    all_in_band = all_in_band && level > 0.0 && level < 0.12;
    std::printf("final ADR %-12s = %.4f\n",
                RaceName(static_cast<Race>(r)).c_str(), level);
  }
  double gap = eqimpact::stats::CoincidenceGap(final_levels);
  std::printf("\nshape check: final levels in the low band (<0.12): %s\n",
              all_in_band ? "yes" : "NO");
  std::printf("shape check: race curves coincide (gap %.4f < 0.05): %s\n",
              gap, gap < 0.05 ? "yes" : "NO");

  bool settled = true;
  for (size_t r = 0; r < kNumRaces; ++r) {
    settled = settled && eqimpact::stats::HasSettled(
                             result.race_envelopes[r].mean, 5, 0.02);
  }
  std::printf("shape check: all curves settled over the last 5 years: %s\n",
              settled ? "yes" : "NO");
  return 0;
}
