// Reproduces paper Figure 5: the density of ADR_i(k) per year with race
// information erased — the paper's grey-shade plot becomes a per-year
// histogram grid over [0, 1] (darker = higher density).
//
// The per-year fractions come straight from the streaming pooled-ADR
// accumulator (10 bins, exactly the figure's binning): no per-user
// series is ever materialized, so the bench's memory is O(bins x years)
// however many users and trials are pooled.
//
// Expected shape (paper): mass concentrated near 0 throughout, a visible
// streak of high-ADR users after the warm-up years that fades as the
// scorecard loop suppresses repeat defaults, and a tight concentration at
// a low level by 2020.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/multi_trial.h"
#include "stats/adr_accumulator.h"

int main() {
  std::printf(
      "=== Figure 5: density of ADR_i(k) by year, race-blind ===\n\n");

  constexpr size_t kBins = 10;
  eqimpact::sim::MultiTrialOptions options;
  options.loop.num_users = 1000;
  options.num_trials = 5;
  options.master_seed = 42;
  options.adr_bins = kBins;
  eqimpact::sim::MultiTrialResult result =
      eqimpact::sim::RunMultiTrial(options);
  const eqimpact::stats::AdrAccumulator& adr = result.pooled_adr;

  // Header: bin ranges.
  std::printf("%-6s", "Year");
  for (size_t b = 0; b < kBins; ++b) {
    std::printf(" [%.1f,%.1f)", 0.1 * static_cast<double>(b),
                0.1 * static_cast<double>(b + 1));
  }
  std::printf("   (fraction of the 5000 users per ADR bin)\n");

  const std::string shades = " .:-=+*#%@";  // Darker = denser.
  std::vector<double> final_fractions(kBins, 0.0);
  for (size_t k = 0; k < result.years.size(); ++k) {
    std::printf("%-6d", result.years[k]);
    for (size_t b = 0; b < kBins; ++b) {
      double fraction = adr.StepBinFraction(k, b);
      std::printf(" %9.4f", fraction);
      if (k + 1 == result.years.size()) final_fractions[b] = fraction;
    }
    // Compact shade strip mirroring the paper's grey scale.
    std::printf("   ");
    for (size_t b = 0; b < kBins; ++b) {
      double f = adr.StepBinFraction(k, b);
      size_t level = static_cast<size_t>(f * (shades.size() - 1) * 2.5);
      level = std::min(level, shades.size() - 1);
      std::printf("%c", shades[level]);
    }
    std::printf("\n");
  }

  // Shape checks: by 2020 the distribution concentrates at low ADR.
  double low_mass = final_fractions[0] + final_fractions[1];
  double high_mass = final_fractions[kBins - 1] + final_fractions[kBins - 2];
  std::printf("\nshape check: final mass in ADR < 0.2 is dominant: %.3f\n",
              low_mass);
  std::printf("shape check: final mass in ADR > 0.8 is small:    %.3f\n",
              high_mass);
  std::printf("verdict: %s\n",
              (low_mass > 0.6 && high_mass < 0.2) ? "matches Figure 5 shape"
                                                  : "MISMATCH");
  return 0;
}
