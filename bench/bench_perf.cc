// Google-Benchmark micro-benchmarks of the library's hot paths: RNG
// throughput, the normal CDF (on the repayment hot path), logistic IRLS
// training, closed-loop trial throughput, Markov-operator application and
// stationary-distribution solves. Build in Release for meaningful numbers.

#include <benchmark/benchmark.h>

#include "credit/credit_loop.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"
#include "markov/affine_ifs.h"
#include "markov/affine_map.h"
#include "markov/coupling.h"
#include "markov/ulam.h"
#include "markov/markov_chain.h"
#include "market/matching_market.h"
#include "ml/dataset.h"
#include "ml/logistic_regression.h"
#include "rng/normal.h"
#include "rng/random.h"

namespace {

using eqimpact::linalg::Matrix;
using eqimpact::linalg::Vector;

void BM_Pcg32Next(benchmark::State& state) {
  eqimpact::rng::Pcg32 gen(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_Pcg32Next);

void BM_UniformDouble(benchmark::State& state) {
  eqimpact::rng::Random random(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(random.UniformDouble());
  }
}
BENCHMARK(BM_UniformDouble);

void BM_StandardNormalCdf(benchmark::State& state) {
  double x = -4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eqimpact::rng::StandardNormalCdf(x));
    x += 1e-6;
  }
}
BENCHMARK(BM_StandardNormalCdf);

void BM_NormalDraw(benchmark::State& state) {
  eqimpact::rng::Random random(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(random.Normal());
  }
}
BENCHMARK(BM_NormalDraw);

void BM_LogisticFitIrls(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  eqimpact::rng::Random random(7);
  eqimpact::ml::Dataset data(2);
  for (int i = 0; i < n; ++i) {
    double adr = random.UniformDouble();
    double code = random.Bernoulli(0.5) ? 1.0 : 0.0;
    double p = eqimpact::ml::Sigmoid(-4.0 * adr + 3.0 * code);
    data.Add(Vector{adr, code}, random.Bernoulli(p) ? 1.0 : 0.0);
  }
  for (auto _ : state) {
    eqimpact::ml::LogisticRegression model;
    benchmark::DoNotOptimize(model.Fit(data));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LogisticFitIrls)->Arg(1000)->Arg(10000);

void BM_CreditLoopTrial(benchmark::State& state) {
  eqimpact::credit::CreditLoopOptions options;
  options.num_users = static_cast<size_t>(state.range(0));
  options.seed = 3;
  eqimpact::credit::CreditScoringLoop loop(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(loop.Run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 19);
}
BENCHMARK(BM_CreditLoopTrial)->Arg(200)->Arg(1000);

void BM_MarkovChainStep(benchmark::State& state) {
  eqimpact::markov::MarkovChain chain(
      Matrix{{0.6, 0.3, 0.1}, {0.2, 0.5, 0.3}, {0.1, 0.2, 0.7}});
  eqimpact::rng::Random random(5);
  size_t s = 0;
  for (auto _ : state) {
    s = chain.Step(s, &random);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_MarkovChainStep);

void BM_StationaryDistribution(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  eqimpact::rng::Random random(9);
  Matrix p(n, n);
  for (size_t r = 0; r < n; ++r) {
    double total = 0.0;
    for (size_t c = 0; c < n; ++c) {
      p(r, c) = random.UniformDouble(0.01, 1.0);
      total += p(r, c);
    }
    for (size_t c = 0; c < n; ++c) p(r, c) /= total;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eqimpact::linalg::StationaryDistribution(p));
  }
}
BENCHMARK(BM_StationaryDistribution)->Arg(8)->Arg(32)->Arg(128);

void BM_AffineIfsTrajectory(benchmark::State& state) {
  eqimpact::markov::AffineIfs ifs(
      {eqimpact::markov::AffineMap::Scalar(0.5, 0.0),
       eqimpact::markov::AffineMap::Scalar(0.5, 1.0)},
      {0.5, 0.5});
  eqimpact::rng::Random random(11);
  Vector x{0.0};
  for (auto _ : state) {
    x = ifs.Step(x, &random);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_AffineIfsTrajectory);

void BM_JacobiEigen(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  eqimpact::rng::Random random(15);
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = r; c < n; ++c) {
      a(r, c) = a(c, r) = random.UniformDouble(-1.0, 1.0);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eqimpact::linalg::JacobiEigen(a));
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(4)->Arg(16)->Arg(64);

void BM_UlamBuildAndSolve(benchmark::State& state) {
  const size_t cells = static_cast<size_t>(state.range(0));
  eqimpact::markov::AffineIfs ifs(
      {eqimpact::markov::AffineMap::Scalar(0.5, 0.0),
       eqimpact::markov::AffineMap::Scalar(0.5, 0.5)},
      {0.5, 0.5});
  for (auto _ : state) {
    eqimpact::markov::UlamApproximation ulam(ifs, 0.0, 1.0, cells);
    benchmark::DoNotOptimize(ulam.InvariantCellMeasure());
  }
}
BENCHMARK(BM_UlamBuildAndSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_SynchronousCoupling(benchmark::State& state) {
  eqimpact::markov::AffineIfs ifs(
      {eqimpact::markov::AffineMap::Scalar(0.5, 0.0),
       eqimpact::markov::AffineMap::Scalar(0.5, 1.0)},
      {0.5, 0.5});
  eqimpact::rng::Random random(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SynchronousCoupling(
        ifs, Vector{-10.0}, Vector{10.0}, 100, 1e-12, &random));
  }
}
BENCHMARK(BM_SynchronousCoupling);

void BM_MatchingMarketRun(benchmark::State& state) {
  eqimpact::market::MatchingMarketOptions options;
  options.num_workers = static_cast<size_t>(state.range(0));
  options.rounds = 200;
  options.seed = 17;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunMatchingMarket(
        eqimpact::market::MatchingRule::kEpsilonGreedy, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 200);
}
BENCHMARK(BM_MatchingMarketRun)->Arg(100)->Arg(400);

void BM_SpectralRadius(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  eqimpact::rng::Random random(13);
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      a(r, c) = random.UniformDouble(-0.5, 0.5) / static_cast<double>(n);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eqimpact::linalg::SpectralRadius(a));
  }
}
BENCHMARK(BM_SpectralRadius)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
