// Performance benchmark with machine-readable JSON output, so the perf
// trajectory can be tracked across PRs (BENCH_*.json).
//
// Two sections:
//
//  * "multi_trial_scaling" — the headline closed-loop workload:
//    sim::RunMultiTrial dispatched through the runtime layer at thread
//    counts 1, 2, ..., hardware_concurrency. Reports wall time,
//    trials/sec, speedup over the sequential run, and a determinism
//    checksum proving every thread count produced bitwise-identical
//    results.
//
//  * "micro" — single-thread timings of the library's hot paths (RNG
//    throughput, normal CDF, logistic IRLS, one closed-loop trial,
//    Markov/linalg kernels) replacing the earlier google-benchmark
//    micro-suite with a dependency-free harness.
//
// Usage: bench_perf [num_trials] [num_users] [max_threads]
// (defaults 32, 200, hardware_concurrency)
// Output: a single JSON object on stdout; progress notes on stderr.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "credit/credit_loop.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"
#include "market/matching_market.h"
#include "markov/affine_ifs.h"
#include "markov/affine_map.h"
#include "markov/coupling.h"
#include "markov/markov_chain.h"
#include "markov/ulam.h"
#include "ml/dataset.h"
#include "ml/logistic_regression.h"
#include "rng/normal.h"
#include "rng/random.h"
#include "runtime/thread_pool.h"
#include "sim/multi_trial.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Order-dependent FNV-1a digest of a MultiTrialResult: values must be
/// mixed in slot order (trial 0, 1, ...) for equal results to produce
/// equal digests — slot order is part of the determinism contract. Any
/// bitwise difference in any trial's series changes the digest.
uint64_t Digest(const eqimpact::sim::MultiTrialResult& result) {
  uint64_t hash = 1469598103934665603ULL;
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ULL;
  };
  auto mix_double = [&mix](double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value), "need 64-bit double");
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  for (const auto& trial : result.trials) {
    for (const auto& series : trial.user_adr) {
      for (double value : series) mix_double(value);
    }
    for (double value : trial.overall_adr) mix_double(value);
  }
  for (const auto& envelope : result.race_envelopes) {
    for (double value : envelope.mean) mix_double(value);
  }
  return hash;
}

/// Median-of-3 wall time of `fn` in seconds.
double TimeIt(const std::function<void()>& fn) {
  double best = 0.0;
  std::vector<double> samples;
  for (int rep = 0; rep < 3; ++rep) {
    Clock::time_point start = Clock::now();
    fn();
    samples.push_back(SecondsSince(start));
  }
  // Median of three.
  double lo = std::min(std::min(samples[0], samples[1]), samples[2]);
  double hi = std::max(std::max(samples[0], samples[1]), samples[2]);
  best = samples[0] + samples[1] + samples[2] - lo - hi;
  return best;
}

struct MicroResult {
  std::string name;
  double seconds = 0.0;
  double items_per_sec = 0.0;
};

MicroResult Micro(const std::string& name, size_t items,
                  const std::function<void()>& fn) {
  MicroResult r;
  r.name = name;
  r.seconds = TimeIt(fn);
  r.items_per_sec = r.seconds > 0.0 ? static_cast<double>(items) / r.seconds
                                    : 0.0;
  std::fprintf(stderr, "  micro %-24s %.4fs\n", name.c_str(), r.seconds);
  return r;
}

std::vector<MicroResult> RunMicroSuite() {
  std::vector<MicroResult> out;

  out.push_back(Micro("pcg32_next", 10000000, [] {
    eqimpact::rng::Pcg32 gen(1);
    uint64_t sink = 0;
    for (int i = 0; i < 10000000; ++i) sink += gen.Next();
    if (sink == 42) std::fprintf(stderr, "!");  // Defeat dead-code elim.
  }));

  out.push_back(Micro("uniform_double", 10000000, [] {
    eqimpact::rng::Random random(1);
    double sink = 0.0;
    for (int i = 0; i < 10000000; ++i) sink += random.UniformDouble();
    if (sink < 0.0) std::fprintf(stderr, "!");
  }));

  out.push_back(Micro("normal_draw", 5000000, [] {
    eqimpact::rng::Random random(1);
    double sink = 0.0;
    for (int i = 0; i < 5000000; ++i) sink += random.Normal();
    if (sink > 1e18) std::fprintf(stderr, "!");
  }));

  out.push_back(Micro("normal_cdf", 5000000, [] {
    double sink = 0.0, x = -4.0;
    for (int i = 0; i < 5000000; ++i) {
      sink += eqimpact::rng::StandardNormalCdf(x);
      x += 1e-6;
    }
    if (sink < 0.0) std::fprintf(stderr, "!");
  }));

  out.push_back(Micro("logistic_irls_1k", 1000, [] {
    eqimpact::rng::Random random(7);
    eqimpact::ml::Dataset data(2);
    for (int i = 0; i < 1000; ++i) {
      double adr = random.UniformDouble();
      double code = random.Bernoulli(0.5) ? 1.0 : 0.0;
      double p = eqimpact::ml::Sigmoid(-4.0 * adr + 3.0 * code);
      data.Add(eqimpact::linalg::Vector{adr, code},
               random.Bernoulli(p) ? 1.0 : 0.0);
    }
    eqimpact::ml::LogisticRegression model;
    model.Fit(data);
  }));

  out.push_back(Micro("credit_loop_trial_1k", 1000 * 19, [] {
    eqimpact::credit::CreditLoopOptions options;
    options.num_users = 1000;
    options.seed = 3;
    eqimpact::credit::CreditScoringLoop loop(options);
    loop.Run();
  }));

  out.push_back(Micro("markov_chain_step", 5000000, [] {
    eqimpact::markov::MarkovChain chain(eqimpact::linalg::Matrix{
        {0.6, 0.3, 0.1}, {0.2, 0.5, 0.3}, {0.1, 0.2, 0.7}});
    eqimpact::rng::Random random(5);
    size_t s = 0;
    for (int i = 0; i < 5000000; ++i) s = chain.Step(s, &random);
    if (s > 3) std::fprintf(stderr, "!");
  }));

  out.push_back(Micro("stationary_dist_32", 32 * 32, [] {
    eqimpact::rng::Random random(9);
    eqimpact::linalg::Matrix p(32, 32);
    for (size_t r = 0; r < 32; ++r) {
      double total = 0.0;
      for (size_t c = 0; c < 32; ++c) {
        p(r, c) = random.UniformDouble(0.01, 1.0);
        total += p(r, c);
      }
      for (size_t c = 0; c < 32; ++c) p(r, c) /= total;
    }
    eqimpact::linalg::StationaryDistribution(p);
  }));

  out.push_back(Micro("jacobi_eigen_64", 64 * 64, [] {
    eqimpact::rng::Random random(15);
    eqimpact::linalg::Matrix a(64, 64);
    for (size_t r = 0; r < 64; ++r) {
      for (size_t c = r; c < 64; ++c) {
        a(r, c) = a(c, r) = random.UniformDouble(-1.0, 1.0);
      }
    }
    eqimpact::linalg::JacobiEigen(a);
  }));

  out.push_back(Micro("affine_ifs_step", 1000000, [] {
    eqimpact::markov::AffineIfs ifs(
        {eqimpact::markov::AffineMap::Scalar(0.5, 0.0),
         eqimpact::markov::AffineMap::Scalar(0.5, 1.0)},
        {0.5, 0.5});
    eqimpact::rng::Random random(11);
    eqimpact::linalg::Vector x{0.0};
    for (int i = 0; i < 1000000; ++i) x = ifs.Step(x, &random);
    if (x[0] > 1e9) std::fprintf(stderr, "!");
  }));

  out.push_back(Micro("ulam_build_solve_64", 64, [] {
    eqimpact::markov::AffineIfs ifs(
        {eqimpact::markov::AffineMap::Scalar(0.5, 0.0),
         eqimpact::markov::AffineMap::Scalar(0.5, 0.5)},
        {0.5, 0.5});
    eqimpact::markov::UlamApproximation ulam(ifs, 0.0, 1.0, 64);
    ulam.InvariantCellMeasure();
  }));

  out.push_back(Micro("synchronous_coupling", 100, [] {
    eqimpact::markov::AffineIfs ifs(
        {eqimpact::markov::AffineMap::Scalar(0.5, 0.0),
         eqimpact::markov::AffineMap::Scalar(0.5, 1.0)},
        {0.5, 0.5});
    eqimpact::rng::Random random(16);
    for (int i = 0; i < 100; ++i) {
      SynchronousCoupling(ifs, eqimpact::linalg::Vector{-10.0},
                          eqimpact::linalg::Vector{10.0}, 100, 1e-12,
                          &random);
    }
  }));

  out.push_back(Micro("matching_market_400", 400 * 200, [] {
    eqimpact::market::MatchingMarketOptions options;
    options.num_workers = 400;
    options.rounds = 200;
    options.seed = 17;
    RunMatchingMarket(eqimpact::market::MatchingRule::kEpsilonGreedy,
                      options);
  }));

  out.push_back(Micro("spectral_radius_64", 64 * 64, [] {
    eqimpact::rng::Random random(13);
    eqimpact::linalg::Matrix a(64, 64);
    for (size_t r = 0; r < 64; ++r) {
      for (size_t c = 0; c < 64; ++c) {
        a(r, c) = random.UniformDouble(-0.5, 0.5) / 64.0;
      }
    }
    eqimpact::linalg::SpectralRadius(a);
  }));

  return out;
}

struct ScalingPoint {
  size_t num_threads = 0;
  double seconds = 0.0;
  double trials_per_sec = 0.0;
  double speedup = 1.0;
  uint64_t digest = 0;
};

}  // namespace

int main(int argc, char** argv) {
  long num_trials = 32;
  long num_users = 200;
  long max_threads =
      static_cast<long>(eqimpact::runtime::ThreadPool::HardwareConcurrency());
  if (argc > 1) num_trials = std::atol(argv[1]);
  if (argc > 2) num_users = std::atol(argv[2]);
  // Optional override of the sweep ceiling (e.g. to demonstrate
  // oversubscription or to pin CI to a fixed thread count).
  if (argc > 3) max_threads = std::atol(argv[3]);
  if (num_trials <= 0 || num_users <= 0 || max_threads <= 0) {
    std::fprintf(stderr,
                 "usage: bench_perf [num_trials] [num_users] [max_threads]\n"
                 "       all arguments must be positive integers\n");
    return 2;
  }
  const size_t hw = static_cast<size_t>(max_threads);

  eqimpact::sim::MultiTrialOptions options;
  options.num_trials = static_cast<size_t>(num_trials);
  options.loop.num_users = static_cast<size_t>(num_users);
  options.master_seed = 42;

  // Thread counts: 1, 2, 4, ... up to hardware concurrency (always
  // including hw itself).
  std::vector<size_t> thread_counts;
  for (size_t t = 1; t < hw; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(hw);

  std::vector<ScalingPoint> scaling;
  double sequential_seconds = 0.0;
  for (size_t threads : thread_counts) {
    options.num_threads = threads;
    eqimpact::sim::MultiTrialResult result;
    ScalingPoint point;
    point.num_threads = threads;
    point.seconds =
        TimeIt([&options, &result] { result = RunMultiTrial(options); });
    point.trials_per_sec = static_cast<double>(num_trials) / point.seconds;
    point.digest = Digest(result);
    if (threads == 1) sequential_seconds = point.seconds;
    point.speedup =
        point.seconds > 0.0 ? sequential_seconds / point.seconds : 0.0;
    scaling.push_back(point);
    std::fprintf(stderr,
                 "  multi_trial threads=%zu %.3fs (%.2f trials/s, %.2fx)\n",
                 threads, point.seconds, point.trials_per_sec, point.speedup);
  }

  bool deterministic = true;
  for (const ScalingPoint& point : scaling) {
    if (point.digest != scaling.front().digest) deterministic = false;
  }

  std::vector<MicroResult> micro = RunMicroSuite();

  // Emit the JSON document on stdout.
  std::printf("{\n");
  std::printf("  \"benchmark\": \"bench_perf\",\n");
  std::printf("  \"hardware_concurrency\": %zu,\n",
              eqimpact::runtime::ThreadPool::HardwareConcurrency());
  std::printf("  \"max_threads_swept\": %zu,\n", hw);
  std::printf("  \"multi_trial_scaling\": {\n");
  std::printf("    \"num_trials\": %ld,\n", num_trials);
  std::printf("    \"num_users\": %ld,\n", num_users);
  std::printf("    \"deterministic_across_thread_counts\": %s,\n",
              deterministic ? "true" : "false");
  std::printf("    \"digest\": \"%016" PRIx64 "\",\n",
              scaling.front().digest);
  std::printf("    \"runs\": [\n");
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScalingPoint& p = scaling[i];
    std::printf(
        "      {\"num_threads\": %zu, \"wall_seconds\": %.6f, "
        "\"trials_per_sec\": %.3f, \"speedup\": %.3f}%s\n",
        p.num_threads, p.seconds, p.trials_per_sec, p.speedup,
        i + 1 < scaling.size() ? "," : "");
  }
  std::printf("    ]\n");
  std::printf("  },\n");
  std::printf("  \"micro\": [\n");
  for (size_t i = 0; i < micro.size(); ++i) {
    std::printf(
        "    {\"name\": \"%s\", \"wall_seconds\": %.6f, "
        "\"items_per_sec\": %.1f}%s\n",
        micro[i].name.c_str(), micro[i].seconds, micro[i].items_per_sec,
        i + 1 < micro.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return deterministic ? 0 : 1;
}
