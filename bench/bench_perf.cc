// Performance benchmark with machine-readable JSON output, so the perf
// trajectory can be tracked across PRs (BENCH_*.json, checked by
// scripts/check_bench_regression.py in CI).
//
// Three sections:
//
//  * "multi_trial_scaling" — the headline closed-loop workload:
//    sim::RunMultiTrial dispatched through the runtime layer at thread
//    counts 1, 2, ..., hardware_concurrency. Reports wall time,
//    trials/sec, speedup over the sequential run, and a determinism
//    checksum proving every thread count produced bitwise-identical
//    results (raw series + streaming accumulator).
//
//  * "within_trial_scaling" — one large-cohort trial (default 10^6
//    users) with the per-user series disabled: the batch engine's
//    chunked passes sweep thread counts while the per-year cross-
//    sections stream into a stats::AdrAccumulator. Proves the
//    within-trial determinism contract (equal digest at every thread
//    count) and that the run is memory-bounded (peak RSS reported; the
//    raw series for 10^6 users x 19 years would be ~150 MB/trial).
//
//  * "fit_scaling" — the yearly scorecard refit at accumulated-history
//    scale (default 12 * 10^6 rows, the order of a 10^6-user trial's
//    19-year decision history): one raw-row IRLS fit (the PR 2 baseline)
//    against the sufficient-statistics path (ml::BinnedDataset build +
//    grouped fit), with the grouped fit swept over thread counts and a
//    digest over the coefficients proving they are bitwise-identical at
//    every thread count.
//
//  * "market_scaling" — the matching-market scenario through the
//    generic scenario/experiment API (sim::MatchingMarketScenario via
//    sim::RunExperiment): the trial-parallel driver the market gained
//    in PR 4, swept over thread counts with a sim::ExperimentDigest
//    proving bitwise-identical aggregates at every thread count.
//
//  * "simd_scaling" — the kernel layer (runtime/kernels.h +
//    rng::Pcg32::FillUniform): every kernel timed through its scalar
//    reference and through the active vector backend on the same
//    inputs, the outputs compared bit for bit
//    ("vector_matches_scalar"), and a digest over the scalar outputs
//    pinning the kernels' numerical behaviour across PRs.
//
//  * "phi_scaling" — the pinned normal-CDF kernel (PR 6): scalar
//    reference vs active vector backend rates on hot-path-shaped
//    inputs plus adversarial specials, a bit-for-bit gate
//    ("vector_matches_scalar"), and the measured max ulp against
//    libm's 0.5 * erfc(-x / sqrt 2) with its documented bound
//    (base::phi::kMaxUlpVsLibm) — both gates feed the exit code.
//
//  * "fold_scaling" — the refit fold (PR 6): the same 1k-user credit
//    trial run with the hashed BinnedDataset fold and with the dense
//    (ADR numerator, code) -> group table, rates for both, and a
//    digest equality gate ("dense_matches_hashed") proving the fast
//    path changes nothing.
//
//  * "shard_scaling" — the sharded population engine (PR 7): the
//    within-trial workload swept over shard counts at one thread, with
//    three hard gates feeding the exit code: every sharded digest
//    equals the unsharded one ("sharded_matches_unsharded"), all shard
//    counts agree ("deterministic_across_shard_counts"), and a trial
//    checkpointed mid-run and resumed under a different shard count
//    reproduces the digest ("checkpoint_resume_matches"). Peak RSS is
//    sampled after every shard count — before fit_scaling materializes
//    its raw-row baseline, so the high-water marks still reflect the
//    streaming trial.
//
//  * "serving_scaling" — the experiment service (PR 8): an in-process
//    loopback server (run_experiment --serve's engine) fed a burst of
//    mixed credit/market/ensemble jobs from concurrent client
//    connections, then the identical burst again for deterministic
//    cache hits. Reports jobs/s, p50/p95 submit-to-result latency and
//    the cache hit rate; the hard gate ("served_digest_matches_cli")
//    re-runs every distinct spec directly through RunExperiment + the
//    shared renderer and requires digest AND payload byte-equality —
//    the serving path must add no bytes and lose none.
//
//  * "markov_scaling" — the sparse Markov/Ulam engine (PR 9): the
//    biased binary IFS {x/2 w.p. 0.6, x/2 + 1/2 w.p. 0.4} discretised
//    at 10^2..10^5
//    cells. Per size: CSR build time, adjoint matvec rate, stationary
//    solver iterations, spectral gap and the invariant-measure digest.
//    Hard gates feeding the exit code: at the sizes where the dense
//    O(n^2) oracle is affordable, the sparse operator must equal the
//    dense Ulam matrix entry for entry and Propagate must match it bit
//    for bit ("sparse_matches_dense"); build, matvec and stationary
//    digests must be bitwise identical at 1, 2 and 8 threads with a
//    chunk size small enough to force multi-chunk dispatch
//    ("deterministic_across_thread_counts").
//
//  * "micro" — single-thread timings of the library's hot paths (RNG
//    throughput, normal CDF, logistic IRLS, one closed-loop trial,
//    Markov/linalg kernels) replacing the earlier google-benchmark
//    micro-suite with a dependency-free harness.
//
// Usage: bench_perf [num_trials] [num_users] [max_threads] [within_users]
// [fit_rows] [markov_cells]
// (defaults 32, 200, hardware_concurrency, 1000000, 12000000, 100000;
// within_users 0 / fit_rows 0 / markov_cells 0 skip the respective
// section)
// Output: a single JSON object on stdout; progress notes on stderr.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "base/fnv1a.h"
#include "base/serial.h"
#include "base/simd_scalar.h"
#include "credit/credit_loop.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/sparse_eigen.h"
#include "linalg/sparse_matrix.h"
#include "linalg/symmetric_eigen.h"
#include "market/matching_market.h"
#include "markov/affine_ifs.h"
#include "markov/affine_map.h"
#include "markov/coupling.h"
#include "markov/markov_chain.h"
#include "markov/sparse_ulam.h"
#include "markov/ulam.h"
#include "ml/binned_dataset.h"
#include "ml/dataset.h"
#include "ml/logistic_regression.h"
#include "rng/normal.h"
#include "rng/random.h"
#include "runtime/kernels.h"
#include "runtime/simd.h"
#include "runtime/thread_pool.h"
#include "serve/client.h"
#include "serve/render_json.h"
#include "serve/server.h"
#include "sim/experiment.h"
#include "sim/market_scenario.h"
#include "sim/multi_trial.h"
#include "sim/scenario_registry.h"
#include "stats/adr_accumulator.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Peak resident set size in MB (0 when the platform has no getrusage).
double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // Linux reports ru_maxrss in KB (macOS in bytes; close enough for a
    // bound report — CI runs Linux).
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
  }
#endif
  return 0.0;
}

using Fnv1a = eqimpact::base::Fnv1a;
using eqimpact::sim::MixAccumulator;

uint64_t Digest(const eqimpact::sim::MultiTrialResult& result) {
  Fnv1a digest;
  for (const auto& trial : result.trials) {
    for (const auto& series : trial.user_adr) digest.MixSeries(series);
    digest.MixSeries(trial.overall_adr);
  }
  for (const auto& envelope : result.race_envelopes) {
    digest.MixSeries(envelope.mean);
  }
  MixAccumulator(&digest, result.pooled_adr);
  return digest.hash();
}

uint64_t Digest(const eqimpact::credit::CreditLoopResult& result,
                const eqimpact::stats::AdrAccumulator& adr) {
  Fnv1a digest;
  digest.MixSeries(result.overall_adr);
  for (const auto& series : result.race_adr) digest.MixSeries(series);
  MixAccumulator(&digest, adr);
  return digest.hash();
}

/// Median-of-3 wall time of `fn` in seconds.
double TimeIt(const std::function<void()>& fn) {
  std::vector<double> samples;
  for (int rep = 0; rep < 3; ++rep) {
    Clock::time_point start = Clock::now();
    fn();
    samples.push_back(SecondsSince(start));
  }
  // Median of three.
  double lo = std::min(std::min(samples[0], samples[1]), samples[2]);
  double hi = std::max(std::max(samples[0], samples[1]), samples[2]);
  return samples[0] + samples[1] + samples[2] - lo - hi;
}

struct MicroResult {
  std::string name;
  double seconds = 0.0;
  double items_per_sec = 0.0;
};

MicroResult Micro(const std::string& name, size_t items,
                  const std::function<void()>& fn) {
  MicroResult r;
  r.name = name;
  r.seconds = TimeIt(fn);
  r.items_per_sec = r.seconds > 0.0 ? static_cast<double>(items) / r.seconds
                                    : 0.0;
  std::fprintf(stderr, "  micro %-24s %.4fs\n", name.c_str(), r.seconds);
  return r;
}

std::vector<MicroResult> RunMicroSuite() {
  std::vector<MicroResult> out;

  out.push_back(Micro("pcg32_next", 10000000, [] {
    eqimpact::rng::Pcg32 gen(1);
    uint64_t sink = 0;
    for (int i = 0; i < 10000000; ++i) sink += gen.Next();
    if (sink == 42) std::fprintf(stderr, "!");  // Defeat dead-code elim.
  }));

  out.push_back(Micro("uniform_double", 10000000, [] {
    eqimpact::rng::Random random(1);
    double sink = 0.0;
    for (int i = 0; i < 10000000; ++i) sink += random.UniformDouble();
    if (sink < 0.0) std::fprintf(stderr, "!");
  }));

  out.push_back(Micro("normal_draw", 5000000, [] {
    eqimpact::rng::Random random(1);
    double sink = 0.0;
    for (int i = 0; i < 5000000; ++i) sink += random.Normal();
    if (sink > 1e18) std::fprintf(stderr, "!");
  }));

  out.push_back(Micro("normal_cdf", 5000000, [] {
    double sink = 0.0, x = -4.0;
    for (int i = 0; i < 5000000; ++i) {
      sink += eqimpact::rng::StandardNormalCdf(x);
      x += 1e-6;
    }
    if (sink < 0.0) std::fprintf(stderr, "!");
  }));

  out.push_back(Micro("logistic_irls_1k", 1000, [] {
    eqimpact::rng::Random random(7);
    eqimpact::ml::Dataset data(2);
    data.Reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      double adr = random.UniformDouble();
      double code = random.Bernoulli(0.5) ? 1.0 : 0.0;
      double p = eqimpact::ml::Sigmoid(-4.0 * adr + 3.0 * code);
      double row[2] = {adr, code};
      data.AddRow(row, random.Bernoulli(p) ? 1.0 : 0.0);
    }
    eqimpact::ml::LogisticRegression model;
    model.Fit(data);
  }));

  out.push_back(Micro("credit_loop_trial_1k", 1000 * 19, [] {
    eqimpact::credit::CreditLoopOptions options;
    options.num_users = 1000;
    options.seed = 3;
    eqimpact::credit::CreditScoringLoop loop(options);
    loop.Run();
  }));

  out.push_back(Micro("markov_chain_step", 5000000, [] {
    eqimpact::markov::MarkovChain chain(eqimpact::linalg::Matrix{
        {0.6, 0.3, 0.1}, {0.2, 0.5, 0.3}, {0.1, 0.2, 0.7}});
    eqimpact::rng::Random random(5);
    size_t s = 0;
    for (int i = 0; i < 5000000; ++i) s = chain.Step(s, &random);
    if (s > 3) std::fprintf(stderr, "!");
  }));

  out.push_back(Micro("stationary_dist_32", 32 * 32, [] {
    eqimpact::rng::Random random(9);
    eqimpact::linalg::Matrix p(32, 32);
    for (size_t r = 0; r < 32; ++r) {
      double total = 0.0;
      for (size_t c = 0; c < 32; ++c) {
        p(r, c) = random.UniformDouble(0.01, 1.0);
        total += p(r, c);
      }
      for (size_t c = 0; c < 32; ++c) p(r, c) /= total;
    }
    eqimpact::linalg::StationaryDistribution(p);
  }));

  out.push_back(Micro("jacobi_eigen_64", 64 * 64, [] {
    eqimpact::rng::Random random(15);
    eqimpact::linalg::Matrix a(64, 64);
    for (size_t r = 0; r < 64; ++r) {
      for (size_t c = r; c < 64; ++c) {
        a(r, c) = a(c, r) = random.UniformDouble(-1.0, 1.0);
      }
    }
    eqimpact::linalg::JacobiEigen(a);
  }));

  out.push_back(Micro("affine_ifs_step", 1000000, [] {
    eqimpact::markov::AffineIfs ifs(
        {eqimpact::markov::AffineMap::Scalar(0.5, 0.0),
         eqimpact::markov::AffineMap::Scalar(0.5, 1.0)},
        {0.5, 0.5});
    eqimpact::rng::Random random(11);
    eqimpact::linalg::Vector x{0.0};
    for (int i = 0; i < 1000000; ++i) x = ifs.Step(x, &random);
    if (x[0] > 1e9) std::fprintf(stderr, "!");
  }));

  out.push_back(Micro("ulam_build_solve_64", 64, [] {
    eqimpact::markov::AffineIfs ifs(
        {eqimpact::markov::AffineMap::Scalar(0.5, 0.0),
         eqimpact::markov::AffineMap::Scalar(0.5, 0.5)},
        {0.5, 0.5});
    eqimpact::markov::UlamApproximation ulam(ifs, 0.0, 1.0, 64);
    ulam.InvariantCellMeasure();
  }));

  out.push_back(Micro("synchronous_coupling", 100, [] {
    eqimpact::markov::AffineIfs ifs(
        {eqimpact::markov::AffineMap::Scalar(0.5, 0.0),
         eqimpact::markov::AffineMap::Scalar(0.5, 1.0)},
        {0.5, 0.5});
    eqimpact::rng::Random random(16);
    for (int i = 0; i < 100; ++i) {
      SynchronousCoupling(ifs, eqimpact::linalg::Vector{-10.0},
                          eqimpact::linalg::Vector{10.0}, 100, 1e-12,
                          &random);
    }
  }));

  out.push_back(Micro("matching_market_400", 400 * 200, [] {
    eqimpact::market::MatchingMarketOptions options;
    options.num_workers = 400;
    options.rounds = 200;
    options.seed = 17;
    RunMatchingMarket(eqimpact::market::MatchingRule::kEpsilonGreedy,
                      options);
  }));

  out.push_back(Micro("spectral_radius_64", 64 * 64, [] {
    eqimpact::rng::Random random(13);
    eqimpact::linalg::Matrix a(64, 64);
    for (size_t r = 0; r < 64; ++r) {
      for (size_t c = 0; c < 64; ++c) {
        a(r, c) = random.UniformDouble(-0.5, 0.5) / 64.0;
      }
    }
    eqimpact::linalg::SpectralRadius(a);
  }));

  return out;
}

struct ScalingPoint {
  size_t num_threads = 0;
  double seconds = 0.0;
  double items_per_sec = 0.0;
  double speedup = 1.0;
  uint64_t digest = 0;
};

/// Synthesizes a training set with the credit loop's feature geometry:
/// ADR values are rationals d/o with o in 1..19 (exact repeats, as the
/// accumulating filter produces), the income code is 0/1, and labels
/// follow a ground-truth logistic model. Deterministic in `seed`.
eqimpact::ml::Dataset SyntheticLoopHistory(size_t num_rows, uint64_t seed) {
  eqimpact::rng::Random random(seed);
  eqimpact::ml::Dataset data(2);
  data.Reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    const int offers = 1 + static_cast<int>(random.UniformInt(19));
    const double code = random.Bernoulli(0.62) ? 1.0 : 0.0;
    const double default_p = code == 1.0 ? 0.05 : 0.32;
    int defaults = 0;
    for (int o = 0; o < offers; ++o) {
      if (random.Bernoulli(default_p)) ++defaults;
    }
    const double adr =
        static_cast<double>(defaults) / static_cast<double>(offers);
    const double repay_p =
        eqimpact::ml::Sigmoid(5.2 * code - 7.9 * adr + 0.8);
    const double row[2] = {adr, code};
    data.AddRow(row, random.Bernoulli(repay_p) ? 1.0 : 0.0);
  }
  return data;
}

uint64_t CoefficientDigest(const eqimpact::ml::LogisticRegression& model) {
  Fnv1a digest;
  for (size_t j = 0; j < model.weights().size(); ++j) {
    digest.MixDouble(model.weights()[j]);
  }
  digest.MixDouble(model.intercept());
  return digest.hash();
}

// --- simd_scaling helpers. -------------------------------------------------

struct SimdKernelPoint {
  std::string name;
  double scalar_seconds = 0.0;
  double simd_seconds = 0.0;
  bool matches = false;
};

struct SimdSection {
  size_t num_values = 0;
  bool vector_matches_scalar = true;
  uint64_t digest = 0;
  std::vector<SimdKernelPoint> kernels;
};

/// Times one kernel through its scalar reference and through the active
/// dispatch on identical inputs, checks the outputs bit for bit, and
/// mixes the scalar outputs into the section digest. `scalar_fn` and
/// `simd_fn` must each run `reps` passes filling `out_size` doubles of
/// their buffer; the recorded seconds are per pass.
SimdKernelPoint SimdKernel(const std::string& name, size_t out_size,
                           int reps,
                           const std::function<void(double*)>& scalar_fn,
                           const std::function<void(double*)>& simd_fn,
                           Fnv1a* digest) {
  std::vector<double> scalar_out(out_size, 0.0);
  std::vector<double> simd_out(out_size, 1.0);
  SimdKernelPoint point;
  point.name = name;
  point.scalar_seconds = TimeIt([&] { scalar_fn(scalar_out.data()); }) / reps;
  point.simd_seconds = TimeIt([&] { simd_fn(simd_out.data()); }) / reps;
  point.matches = std::memcmp(scalar_out.data(), simd_out.data(),
                              out_size * sizeof(double)) == 0;
  for (double value : scalar_out) digest->MixDouble(value);
  std::fprintf(stderr,
               "  simd %-18s scalar %.4fs  %s %.4fs  (%.2fx, %s)\n",
               name.c_str(), point.scalar_seconds,
               eqimpact::runtime::simd::BackendName(
                   eqimpact::runtime::simd::ActiveBackend()),
               point.simd_seconds,
               point.simd_seconds > 0.0
                   ? point.scalar_seconds / point.simd_seconds
                   : 0.0,
               point.matches ? "bitwise equal" : "MISMATCH");
  return point;
}

/// The simd_scaling section body: every kernel of the layer over the
/// same `num_values`-sized adversarial-free hot-path-like inputs,
/// repeated kReps times per timing sample.
SimdSection RunSimdSuite(size_t num_values) {
  namespace kernels = eqimpact::runtime::kernels;
  constexpr int kReps = 64;
  const size_t n = num_values;

  // Inputs with the credit hot path's shapes: positive incomes across
  // the bracket range, ADR-like fractions, logistic-scale predictors,
  // and weight arrays with a zero-denominator sprinkle.
  eqimpact::rng::Random random(2026);
  std::vector<double> income(n), adr(n), predictors(n), num(n), den(n),
      rows(2 * n);
  for (size_t i = 0; i < n; ++i) {
    income[i] = random.UniformDouble(1.0, 250.0);
    adr[i] = random.UniformDouble();
    predictors[i] = random.UniformDouble(-30.0, 30.0);
    num[i] = random.UniformDouble(0.0, 20.0);
    den[i] = i % 7 == 0 ? 0.0 : random.UniformDouble(0.5, 20.0);
    rows[2 * i] = adr[i];
    rows[2 * i + 1] = income[i] >= 15.0 ? 1.0 : 0.0;
  }
  kernels::ScoreParams params;
  params.code_threshold = 15.0;
  params.base_points = 0.3;
  params.adr_weight = -8.17;
  params.code_weight = 5.77;
  params.cutoff = 0.4;

  SimdSection section;
  section.num_values = n;
  Fnv1a digest;

  // Separate approval buffers per path: the bit-for-bit gate must cover
  // the approved[] outputs too, not only the code[] doubles SimdKernel
  // compares itself.
  std::vector<unsigned char> approved_scalar(n, 2);
  std::vector<unsigned char> approved_simd(n, 3);
  section.kernels.push_back(SimdKernel(
      "score_sweep", n, kReps,
      [&](double* out) {
        for (int r = 0; r < kReps; ++r) {
          kernels::ScoreSweepScalar(income.data(), adr.data(), n, params,
                                    out, approved_scalar.data());
        }
      },
      [&](double* out) {
        for (int r = 0; r < kReps; ++r) {
          kernels::ScoreSweep(income.data(), adr.data(), n, params, out,
                              approved_simd.data());
        }
      },
      &digest));
  section.kernels.back().matches =
      section.kernels.back().matches && approved_scalar == approved_simd;
  for (unsigned char approved : approved_scalar) digest.Mix(approved);

  section.kernels.push_back(SimdKernel(
      "income_code", n, kReps,
      [&](double* out) {
        for (int r = 0; r < kReps; ++r) {
          kernels::IncomeCodeScalar(income.data(), n, 15.0, out);
        }
      },
      [&](double* out) {
        for (int r = 0; r < kReps; ++r) {
          kernels::IncomeCode(income.data(), n, 15.0, out);
        }
      },
      &digest));

  section.kernels.push_back(SimdKernel(
      "surplus_share", n, kReps,
      [&](double* out) {
        for (int r = 0; r < kReps; ++r) {
          kernels::SurplusShareScalar(income.data(), n, 3.5, 10.0, 0.0216,
                                      out);
        }
      },
      [&](double* out) {
        for (int r = 0; r < kReps; ++r) {
          kernels::SurplusShare(income.data(), n, 3.5, 10.0, 0.0216, out);
        }
      },
      &digest));

  section.kernels.push_back(SimdKernel(
      "guarded_ratio", n, kReps,
      [&](double* out) {
        for (int r = 0; r < kReps; ++r) {
          kernels::GuardedRatioScalar(num.data(), den.data(), n, out);
        }
      },
      [&](double* out) {
        for (int r = 0; r < kReps; ++r) {
          kernels::GuardedRatio(num.data(), den.data(), n, out);
        }
      },
      &digest));

  // The sigmoid's exp is a scalar libm call on both paths (the bitwise
  // contract); only the select + divide vectorizes, so the speedup here
  // is honest but small.
  section.kernels.push_back(SimdKernel(
      "sigmoid_batch", n, kReps / 8,
      [&](double* out) {
        for (int r = 0; r < kReps / 8; ++r) {
          kernels::SigmoidBatchScalar(predictors.data(), n, out);
        }
      },
      [&](double* out) {
        for (int r = 0; r < kReps / 8; ++r) {
          kernels::SigmoidBatch(predictors.data(), n, out);
        }
      },
      &digest));

  section.kernels.push_back(SimdKernel(
      "linear_predictor2", n, kReps,
      [&](double* out) {
        for (int r = 0; r < kReps; ++r) {
          kernels::LinearPredictor2Scalar(rows.data(), n, -8.17, 5.77, 0.3,
                                          true, out);
        }
      },
      [&](double* out) {
        for (int r = 0; r < kReps; ++r) {
          kernels::LinearPredictor2(rows.data(), n, -8.17, 5.77, 0.3, true,
                                    out);
        }
      },
      &digest));

  // The PCG batch fill dispatches inside rng; the scalar side runs the
  // same call under the force-scalar toggle. Fresh generators per rep
  // keep both sides on the identical stream.
  section.kernels.push_back(SimdKernel(
      "fill_uniform", n, kReps,
      [&](double* out) {
        eqimpact::base::SetSimdForceScalarForTesting(true);
        for (int r = 0; r < kReps; ++r) {
          eqimpact::rng::Pcg32 gen(7, 11);
          gen.FillUniform(out, n);
        }
        eqimpact::base::SetSimdForceScalarForTesting(false);
      },
      [&](double* out) {
        for (int r = 0; r < kReps; ++r) {
          eqimpact::rng::Pcg32 gen(7, 11);
          gen.FillUniform(out, n);
        }
      },
      &digest));

  for (const SimdKernelPoint& point : section.kernels) {
    section.vector_matches_scalar =
        section.vector_matches_scalar && point.matches;
  }
  section.digest = digest.hash();
  return section;
}

// --- phi_scaling helpers. --------------------------------------------------

struct PhiSection {
  size_t num_values = 0;
  bool vector_matches_scalar = false;
  int64_t max_ulp_vs_libm = 0;
  int ulp_bound = eqimpact::base::phi::kMaxUlpVsLibm;
  double scalar_rate = 0.0;
  double vector_rate = 0.0;
  double libm_rate = 0.0;
  uint64_t digest = 0;
};

/// Ulp distance between two Phi outputs. Both values are in [0, 1], so
/// their bit patterns are non-negative and order-isomorphic; the
/// distance is the plain integer gap.
int64_t PhiUlpDistance(double a, double b) {
  int64_t ia = 0, ib = 0;
  std::memcpy(&ia, &a, sizeof(a));
  std::memcpy(&ib, &b, sizeof(b));
  return ia > ib ? ia - ib : ib - ia;
}

/// The phi_scaling section: NormalCdfBatch through its scalar reference
/// and the active vector backend on identical inputs — the trial's hot
/// range plus deep tails and the adversarial specials — gated bit for
/// bit, with the measured max ulp against libm's historical
/// 0.5 * erfc(-x / sqrt 2) reference checked against the documented
/// bound (base::phi::kMaxUlpVsLibm).
PhiSection RunPhiSuite(size_t num_values) {
  namespace kernels = eqimpact::runtime::kernels;
  namespace phi = eqimpact::base::phi;
  constexpr int kReps = 16;
  PhiSection section;

  std::vector<double> x(num_values);
  eqimpact::rng::Random random(2026);
  // 3/4 in the repayment hot range, 1/4 across the full clamp span.
  const size_t hot = num_values * 3 / 4;
  for (size_t i = 0; i < hot; ++i) x[i] = random.UniformDouble(-8.0, 8.0);
  for (size_t i = hot; i < num_values; ++i) {
    x[i] = random.UniformDouble(-phi::kClamp, phi::kClamp);
  }
  // Adversarial specials at the front: branch switch points, the clamp
  // edge, signed zero, infinities and a payloaded NaN (the bitwise gate
  // covers them; the ulp check skips non-finite and beyond-clamp).
  const double specials[] = {0.0,
                             -0.0,
                             0.46875 * phi::kSqrt2,
                             -0.46875 * phi::kSqrt2,
                             4.0 * phi::kSqrt2,
                             -4.0 * phi::kSqrt2,
                             phi::kClamp,
                             -phi::kClamp,
                             phi::kClamp + 1e-9,
                             -phi::kClamp - 1e-9,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN()};
  for (size_t i = 0; i < sizeof(specials) / sizeof(specials[0]); ++i) {
    x[i] = specials[i];
  }
  section.num_values = num_values;

  std::vector<double> scalar_out(num_values, 0.0);
  std::vector<double> vector_out(num_values, 1.0);
  const double scalar_seconds = TimeIt([&] {
    for (int r = 0; r < kReps; ++r) {
      kernels::NormalCdfBatchScalar(x.data(), num_values, scalar_out.data());
    }
  }) / kReps;
  const double vector_seconds = TimeIt([&] {
    for (int r = 0; r < kReps; ++r) {
      kernels::NormalCdfBatch(x.data(), num_values, vector_out.data());
    }
  }) / kReps;
  double libm_sink = 0.0;
  const double libm_seconds = TimeIt([&] {
    for (int r = 0; r < kReps; ++r) {
      for (size_t i = 0; i < num_values; ++i) {
        libm_sink += 0.5 * std::erfc(-x[i] / phi::kSqrt2);
      }
    }
  }) / kReps;
  if (libm_sink < 0.0) std::fprintf(stderr, "!");

  section.vector_matches_scalar =
      std::memcmp(scalar_out.data(), vector_out.data(),
                  num_values * sizeof(double)) == 0;
  for (size_t i = 0; i < num_values; ++i) {
    if (!(x[i] >= -phi::kClamp && x[i] <= phi::kClamp)) continue;
    const double libm = 0.5 * std::erfc(-x[i] / phi::kSqrt2);
    const int64_t ulp = PhiUlpDistance(scalar_out[i], libm);
    if (ulp > section.max_ulp_vs_libm) section.max_ulp_vs_libm = ulp;
  }
  section.scalar_rate =
      scalar_seconds > 0.0
          ? static_cast<double>(num_values) / scalar_seconds
          : 0.0;
  section.vector_rate =
      vector_seconds > 0.0
          ? static_cast<double>(num_values) / vector_seconds
          : 0.0;
  section.libm_rate =
      libm_seconds > 0.0 ? static_cast<double>(num_values) / libm_seconds
                         : 0.0;
  Fnv1a digest;
  for (double value : scalar_out) digest.MixDouble(value);
  section.digest = digest.hash();
  std::fprintf(stderr,
               "  phi_scaling scalar %.1fM/s  vector %.1fM/s  libm %.1fM/s "
               "(max ulp %" PRId64 " <= %d: %s, bitwise: %s)\n",
               section.scalar_rate / 1e6, section.vector_rate / 1e6,
               section.libm_rate / 1e6, section.max_ulp_vs_libm,
               section.ulp_bound,
               section.max_ulp_vs_libm <= section.ulp_bound ? "ok" : "FAIL",
               section.vector_matches_scalar ? "equal" : "MISMATCH");
  return section;
}

// --- fold_scaling helpers. -------------------------------------------------

struct FoldSection {
  size_t num_users = 0;
  size_t num_user_years = 0;
  bool dense_matches_hashed = false;
  double hashed_rate = 0.0;
  double dense_rate = 0.0;
  uint64_t digest = 0;
};

uint64_t FoldDigest(const eqimpact::credit::CreditLoopResult& result) {
  Fnv1a digest;
  digest.MixSeries(result.overall_adr);
  for (const auto& series : result.race_adr) digest.MixSeries(series);
  for (const auto& snapshot : result.scorecards) {
    digest.Mix(static_cast<uint64_t>(snapshot.year));
    digest.MixDouble(snapshot.history_weight);
    digest.MixDouble(snapshot.income_weight);
    digest.MixDouble(snapshot.intercept);
  }
  return digest.hash();
}

/// The fold_scaling section: the 1k-user closed-loop trial through the
/// hashed BinnedDataset fold and through the dense per-year
/// (ADR numerator, code) -> group table, with a digest equality gate
/// over the ADR series and fitted scorecards.
FoldSection RunFoldSuite() {
  constexpr size_t kUsers = 1000;
  constexpr int kReps = 24;
  FoldSection section;
  section.num_users = kUsers;

  eqimpact::credit::CreditLoopOptions options;
  options.num_users = kUsers;
  options.seed = 3;
  section.num_user_years = kUsers * (static_cast<size_t>(options.last_year -
                                                         options.first_year) +
                                     1);
  uint64_t digests[2] = {0, 0};
  double rates[2] = {0.0, 0.0};
  for (int dense = 0; dense < 2; ++dense) {
    options.dense_history_fold = dense != 0;
    eqimpact::credit::CreditScoringLoop(options).Run();  // Warm-up.
    const double seconds = TimeIt([&options] {
      for (int rep = 0; rep < kReps; ++rep) {
        eqimpact::credit::CreditScoringLoop(options).Run();
      }
    }) / kReps;
    digests[dense] =
        FoldDigest(eqimpact::credit::CreditScoringLoop(options).Run());
    rates[dense] =
        seconds > 0.0
            ? static_cast<double>(section.num_user_years) / seconds
            : 0.0;
  }
  section.hashed_rate = rates[0];
  section.dense_rate = rates[1];
  section.dense_matches_hashed = digests[0] == digests[1];
  section.digest = digests[1];
  std::fprintf(stderr,
               "  fold_scaling hashed %.2fM user-years/s  dense %.2fM "
               "(%.2fx, digests %s)\n",
               section.hashed_rate / 1e6, section.dense_rate / 1e6,
               section.hashed_rate > 0.0
                   ? section.dense_rate / section.hashed_rate
                   : 0.0,
               section.dense_matches_hashed ? "equal" : "MISMATCH");
  return section;
}

// --- serving_scaling helpers. ----------------------------------------------

/// One distinct serving-bench job: the request line plus everything
/// needed to reproduce its payload directly through the engine + the
/// shared renderer (the hard gate).
struct ServingJob {
  std::string request;
  std::string scenario;
  std::string parameter;
  double value = 0.0;
  size_t trials = 0;
};

struct ServingSection {
  size_t num_jobs = 0;      ///< Total submissions (both bursts).
  size_t num_distinct = 0;  ///< Distinct specs (first burst).
  size_t num_workers = 0;
  size_t num_connections = 0;
  size_t runs_started = 0;
  double wall_seconds = 0.0;
  double jobs_per_sec = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double cache_hit_rate = 0.0;
  bool served_digest_matches_cli = true;
  uint64_t digest = 0;
};

/// Twelve distinct small jobs across the three built-in scenarios.
/// Values chosen so every spec is distinct and every run is sub-second.
/// Shared by the serving burst suite and the connection-count sweep.
std::vector<ServingJob> BuildServingJobs() {
  std::vector<ServingJob> jobs;
  for (double users : {150.0, 200.0, 250.0, 300.0}) {
    ServingJob job;
    job.scenario = "credit";
    job.parameter = "num_users";
    job.value = users;
    job.trials = 2;
    jobs.push_back(job);
  }
  for (double exploration : {0.05, 0.1, 0.2, 0.4}) {
    ServingJob job;
    job.scenario = "market";
    job.parameter = "exploration";
    job.value = exploration;
    job.trials = 2;
    jobs.push_back(job);
  }
  for (double gain : {0.02, 0.05, 0.1, 0.2}) {
    ServingJob job;
    job.scenario = "ensemble";
    job.parameter = "gain";
    job.value = gain;
    job.trials = 2;
    jobs.push_back(job);
  }
  for (ServingJob& job : jobs) {
    char request[160];
    std::snprintf(request, sizeof(request),
                  "{\"scenario\": \"%s\", \"trials\": %zu, "
                  "\"set\": {\"%s\": %g}}",
                  job.scenario.c_str(), job.trials, job.parameter.c_str(),
                  job.value);
    job.request = request;
  }
  return jobs;
}

/// The serving_scaling section: an in-process loopback server under a
/// concurrent mixed-scenario burst, the same burst repeated for cache
/// hits, and a direct-engine re-run of every distinct spec gating
/// digest AND payload byte-equality.
ServingSection RunServingSuite() {
  ServingSection section;

  const std::vector<ServingJob> jobs = BuildServingJobs();
  section.num_distinct = jobs.size();
  section.num_jobs = 2 * jobs.size();
  constexpr size_t kConnections = 4;
  section.num_connections = kConnections;

  eqimpact::serve::ServerOptions server_options;
  server_options.service.scheduler.num_workers = 2;
  // Room for the whole burst: admission rejections are a correctness
  // feature, but this section measures throughput, not backpressure.
  server_options.service.scheduler.queue_capacity = section.num_jobs;
  section.num_workers = server_options.service.scheduler.num_workers;
  eqimpact::serve::Server server(server_options);
  if (!server.Start()) {
    std::fprintf(stderr, "  serving_scaling: server failed to start\n");
    section.served_digest_matches_cli = false;
    return section;
  }

  // Two bursts with a barrier between them: the first runs every
  // distinct spec (all misses), the second resubmits them all (all
  // cache hits, bitwise-identical payloads) — so the hit rate is
  // deterministic at 0.5, not a race.
  std::vector<double> latencies_ms;
  std::vector<std::string> payloads(jobs.size());
  std::vector<uint64_t> digests(jobs.size(), 0);
  std::vector<std::string> repeat_payloads(jobs.size());
  std::mutex collect_mutex;
  bool transport_ok = true;
  const Clock::time_point burst_start = Clock::now();
  for (int burst = 0; burst < 2; ++burst) {
    std::vector<std::thread> submitters;
    for (size_t c = 0; c < kConnections; ++c) {
      submitters.emplace_back([&, c, burst] {
        eqimpact::serve::Client client;
        std::string error;
        if (!client.Connect(server.port(), &error)) {
          std::lock_guard<std::mutex> lock(collect_mutex);
          transport_ok = false;
          return;
        }
        for (size_t j = c; j < jobs.size(); j += kConnections) {
          eqimpact::serve::ClientEvent last;
          const Clock::time_point start = Clock::now();
          const bool ok =
              client.SubmitAndWait(jobs[j].request, &last, &error);
          const double latency_ms = SecondsSince(start) * 1e3;
          std::lock_guard<std::mutex> lock(collect_mutex);
          if (!ok) {
            transport_ok = false;
            continue;
          }
          latencies_ms.push_back(latency_ms);
          if (burst == 0) {
            payloads[j] = last.payload;
            digests[j] = last.digest;
          } else {
            repeat_payloads[j] = last.payload;
          }
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
  }
  section.wall_seconds = SecondsSince(burst_start);
  section.jobs_per_sec =
      section.wall_seconds > 0.0
          ? static_cast<double>(section.num_jobs) / section.wall_seconds
          : 0.0;
  section.runs_started = server.service().runs_started();
  const size_t hits = server.service().cache_hits();
  const size_t misses = server.service().cache_misses();
  section.cache_hit_rate =
      hits + misses > 0 ? static_cast<double>(hits) /
                              static_cast<double>(hits + misses)
                        : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto percentile = [&latencies_ms](double p) {
    if (latencies_ms.empty()) return 0.0;
    const size_t index = static_cast<size_t>(
        p * static_cast<double>(latencies_ms.size() - 1) + 0.5);
    return latencies_ms[index];
  };
  section.p50_latency_ms = percentile(0.5);
  section.p95_latency_ms = percentile(0.95);
  server.Shutdown();

  // The hard gate: every distinct spec straight through the engine and
  // the shared renderer must reproduce the served digest and payload
  // byte for byte — and the cache-hit burst must have returned the
  // first burst's bytes unchanged.
  bool matches = transport_ok;
  eqimpact::base::Fnv1a digest;
  for (size_t j = 0; j < jobs.size(); ++j) {
    const ServingJob& job = jobs[j];
    std::unique_ptr<eqimpact::sim::Scenario> scenario =
        eqimpact::sim::CreateScenario(job.scenario);
    if (scenario == nullptr ||
        !scenario->SetParameter(job.parameter, job.value)) {
      matches = false;
      continue;
    }
    eqimpact::sim::ExperimentOptions options;
    options.num_trials = job.trials;
    options.num_threads = 1;
    const eqimpact::sim::ExperimentResult direct =
        eqimpact::sim::RunExperiment(scenario.get(), options);
    eqimpact::serve::RenderHeader header;
    header.num_trials = job.trials;
    header.provenance_json = eqimpact::serve::RenderProvenance(
        /*force_scalar=*/false, /*num_shards=*/0, /*checkpoint_path=*/"",
        /*resume=*/false, "\"served\": true");
    const uint64_t direct_digest =
        eqimpact::sim::ExperimentDigest(direct);
    const std::string direct_payload =
        eqimpact::serve::RenderExperimentJson(direct, header);
    if (digests[j] != direct_digest || payloads[j] != direct_payload ||
        repeat_payloads[j] != payloads[j]) {
      matches = false;
    }
    digest.Mix(direct_digest);
  }
  section.served_digest_matches_cli = matches;
  section.digest = digest.hash();
  std::fprintf(stderr,
               "  serving_scaling %zu jobs (%zu distinct) %.3fs "
               "(%.1f jobs/s, p50 %.1fms, p95 %.1fms, hit rate %.2f, "
               "digests %s)\n",
               section.num_jobs, section.num_distinct, section.wall_seconds,
               section.jobs_per_sec, section.p50_latency_ms,
               section.p95_latency_ms, section.cache_hit_rate,
               section.served_digest_matches_cli ? "equal" : "MISMATCH");
  return section;
}

/// One point of the serving connection-count sweep: `connections`
/// clients pipelining a fixed total of submissions through one
/// transport, with every payload byte-compared against the pre-warmed
/// baseline (the per-point hard gate).
struct ConnectionSweepPoint {
  std::string transport;  ///< "threads" | "epoll".
  size_t connections = 0;
  size_t num_jobs = 0;
  double wall_seconds = 0.0;
  double jobs_per_sec = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  bool payloads_match = true;
};

struct ConnectionSweepSection {
  std::vector<ConnectionSweepPoint> points;
  bool payloads_match = true;  ///< Fold over every point's gate.
  /// epoll jobs/s over threads jobs/s at 64 connections — the headline
  /// number of the transport change (parity expected on core-starved
  /// containers; the scaling curve and the gates are the bar).
  double epoll_vs_threads_ratio_64 = 0.0;
};

/// The connection-count sweep: per transport, one server with the cache
/// pre-warmed on every distinct spec, then 1/4/16/64 connections
/// splitting a fixed number of pipelined submissions (window of 4 in
/// flight per connection). Cache hits by construction, so the sweep
/// measures transport cost — framing, wakeups, fan-in — not engine
/// time.
ConnectionSweepSection RunConnectionSweep() {
  ConnectionSweepSection section;
  const std::vector<ServingJob> jobs = BuildServingJobs();
  constexpr size_t kTotalJobs = 128;  // Per point; divisible by 64.
  constexpr size_t kWindow = 4;       // Outstanding per connection.
  constexpr size_t kCounts[] = {1, 4, 16, 64};

  const eqimpact::serve::ServerTransport transports[] = {
      eqimpact::serve::ServerTransport::kThreads,
      eqimpact::serve::ServerTransport::kEpoll};
  const char* transport_names[] = {"threads", "epoll"};
  double jobs_per_sec_at_64[2] = {0.0, 0.0};

  for (int t = 0; t < 2; ++t) {
    eqimpact::serve::ServerOptions server_options;
    server_options.transport = transports[t];
    server_options.service.scheduler.num_workers = 2;
    server_options.service.scheduler.queue_capacity = jobs.size();
    eqimpact::serve::Server server(server_options);
    if (!server.Start()) {
      std::fprintf(stderr, "  connection_sweep: %s server failed to start\n",
                   transport_names[t]);
      section.payloads_match = false;
      continue;
    }

    // Pre-warm: every distinct spec runs once; the sweep's submissions
    // all answer from cache with these exact bytes.
    std::vector<std::string> baseline(jobs.size());
    bool warm_ok = true;
    {
      eqimpact::serve::Client client;
      std::string error;
      warm_ok = client.Connect(server.port(), &error);
      for (size_t j = 0; warm_ok && j < jobs.size(); ++j) {
        eqimpact::serve::ClientEvent last;
        warm_ok = client.SubmitAndWait(jobs[j].request, &last, &error);
        if (warm_ok) baseline[j] = last.payload;
      }
    }
    if (!warm_ok) {
      std::fprintf(stderr, "  connection_sweep: %s warm-up failed\n",
                   transport_names[t]);
      section.payloads_match = false;
      server.Shutdown();
      continue;
    }

    for (size_t connections : kCounts) {
      ConnectionSweepPoint point;
      point.transport = transport_names[t];
      point.connections = connections;
      point.num_jobs = kTotalJobs;
      const size_t per_connection = kTotalJobs / connections;

      std::vector<double> latencies_ms;
      std::mutex collect_mutex;
      bool ok = true;
      const Clock::time_point start = Clock::now();
      std::vector<std::thread> clients;
      for (size_t c = 0; c < connections; ++c) {
        clients.emplace_back([&, c] {
          eqimpact::serve::Client client;
          std::string error;
          if (!client.Connect(server.port(), &error)) {
            std::lock_guard<std::mutex> lock(collect_mutex);
            ok = false;
            return;
          }
          // Pipelined submission: keep up to kWindow requests in
          // flight, matching results back to their spec by id.
          struct Pending {
            size_t spec = 0;
            Clock::time_point sent;
          };
          std::map<std::string, Pending> inflight;
          std::vector<double> local_latencies;
          bool local_ok = true;
          size_t next = 0;
          size_t done = 0;
          while (done < per_connection && local_ok) {
            while (next < per_connection &&
                   inflight.size() < kWindow) {
              const size_t spec = (c + next) % jobs.size();
              const std::string id =
                  "c" + std::to_string(c) + "-" + std::to_string(next);
              // Splice the id into the shared request line.
              std::string request = "{\"id\": \"" + id + "\", " +
                                    jobs[spec].request.substr(1);
              Pending pending;
              pending.spec = spec;
              pending.sent = Clock::now();
              inflight.emplace(id, pending);
              if (!client.Send(request)) {
                local_ok = false;
                break;
              }
              ++next;
            }
            eqimpact::serve::ClientEvent event;
            if (!client.ReadEvent(&event, &error)) {
              local_ok = false;
              break;
            }
            if (event.event != "result" && event.event != "error") {
              continue;
            }
            auto found = inflight.find(event.id);
            if (found == inflight.end() || event.event == "error" ||
                event.payload != baseline[found->second.spec]) {
              local_ok = false;
              break;
            }
            local_latencies.push_back(
                SecondsSince(found->second.sent) * 1e3);
            inflight.erase(found);
            ++done;
          }
          std::lock_guard<std::mutex> lock(collect_mutex);
          if (!local_ok) ok = false;
          latencies_ms.insert(latencies_ms.end(), local_latencies.begin(),
                              local_latencies.end());
        });
      }
      for (std::thread& client : clients) client.join();
      point.wall_seconds = SecondsSince(start);
      point.payloads_match =
          ok && latencies_ms.size() == kTotalJobs;
      point.jobs_per_sec =
          point.wall_seconds > 0.0
              ? static_cast<double>(kTotalJobs) / point.wall_seconds
              : 0.0;
      std::sort(latencies_ms.begin(), latencies_ms.end());
      auto percentile = [&latencies_ms](double p) {
        if (latencies_ms.empty()) return 0.0;
        const size_t index = static_cast<size_t>(
            p * static_cast<double>(latencies_ms.size() - 1) + 0.5);
        return latencies_ms[index];
      };
      point.p50_latency_ms = percentile(0.5);
      point.p95_latency_ms = percentile(0.95);
      if (connections == 64) {
        jobs_per_sec_at_64[t] = point.jobs_per_sec;
      }
      section.payloads_match =
          section.payloads_match && point.payloads_match;
      std::fprintf(stderr,
                   "  connection_sweep %s conns=%zu %zu jobs %.3fs "
                   "(%.1f jobs/s, p50 %.2fms, p95 %.2fms, payloads %s)\n",
                   point.transport.c_str(), connections, kTotalJobs,
                   point.wall_seconds, point.jobs_per_sec,
                   point.p50_latency_ms, point.p95_latency_ms,
                   point.payloads_match ? "equal" : "MISMATCH");
      section.points.push_back(point);
    }
    server.Shutdown();
  }
  if (jobs_per_sec_at_64[0] > 0.0) {
    section.epoll_vs_threads_ratio_64 =
        jobs_per_sec_at_64[1] / jobs_per_sec_at_64[0];
    std::fprintf(stderr,
                 "  connection_sweep epoll/threads at 64 conns: %.2fx\n",
                 section.epoll_vs_threads_ratio_64);
  }
  return section;
}

std::vector<size_t> ThreadCounts(size_t max_threads) {
  // 1, 2, 4, ... up to max_threads (always including max_threads itself).
  std::vector<size_t> counts;
  for (size_t t = 1; t < max_threads; t *= 2) counts.push_back(t);
  counts.push_back(max_threads);
  return counts;
}

void PrintScalingRuns(const std::vector<ScalingPoint>& scaling,
                      const char* rate_key) {
  std::printf("    \"runs\": [\n");
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScalingPoint& p = scaling[i];
    std::printf(
        "      {\"num_threads\": %zu, \"wall_seconds\": %.6f, "
        "\"%s\": %.3f, \"speedup\": %.3f}%s\n",
        p.num_threads, p.seconds, rate_key, p.items_per_sec, p.speedup,
        i + 1 < scaling.size() ? "," : "");
  }
  std::printf("    ]\n");
}

bool AllDigestsEqual(const std::vector<ScalingPoint>& scaling) {
  for (const ScalingPoint& point : scaling) {
    if (point.digest != scaling.front().digest) return false;
  }
  return true;
}

// --- markov_scaling helpers. ------------------------------------------------

struct MarkovPoint {
  size_t num_cells = 0;
  size_t nonzeros = 0;
  double build_seconds = 0.0;
  double matvec_seconds = 0.0;  // per adjoint matvec
  double matvec_entries_per_sec = 0.0;
  int solver_iterations = 0;
  double spectral_gap = 0.0;
  uint64_t measure_digest = 0;
};

struct MarkovSection {
  size_t max_cells = 0;
  bool sparse_matches_dense = true;
  bool deterministic_across_thread_counts = true;
  bool stationary_converged = true;
  uint64_t digest = 0;
  std::vector<MarkovPoint> runs;
};

uint64_t DigestVector(const eqimpact::linalg::Vector& v) {
  Fnv1a digest;
  for (size_t i = 0; i < v.size(); ++i) digest.MixDouble(v[i]);
  return digest.hash();
}

uint64_t DigestSparseMatrix(const eqimpact::linalg::SparseMatrix& m) {
  Fnv1a digest;
  for (size_t offset : m.row_offsets()) digest.Mix(offset);
  for (size_t col : m.col_indices()) digest.Mix(col);
  for (double value : m.values()) digest.MixDouble(value);
  return digest.hash();
}

/// The markov_scaling section: the sparse Ulam engine on the biased
/// binary IFS {x/2 w.p. 0.6, x/2 + 1/2 w.p. 0.4} — the (0.6, 0.4)
/// Bernoulli measure on [0, 1], non-uniform so the stationary solver
/// iterates for real — swept over cell counts up to `max_cells`. The
/// dense UlamApproximation matrix — still built by the O(n^2) oracle
/// path — is the equality reference at the sizes where it is
/// affordable.
MarkovSection RunMarkovSuite(size_t max_cells) {
  namespace linalg = eqimpact::linalg;
  namespace markov = eqimpact::markov;
  MarkovSection section;
  section.max_cells = max_cells;
  const markov::AffineIfs ifs({markov::AffineMap::Scalar(0.5, 0.0),
                               markov::AffineMap::Scalar(0.5, 0.5)},
                              {0.6, 0.4});
  constexpr size_t kDenseOracleLimit = 1000;
  constexpr size_t kThreadSweep[] = {1, 2, 8};
  constexpr unsigned kPropagateSteps = 5;

  std::vector<size_t> sizes;
  for (size_t n :
       {size_t{100}, size_t{1000}, size_t{10000}, size_t{100000}}) {
    if (n <= max_cells) sizes.push_back(n);
  }
  if (sizes.empty()) sizes.push_back(max_cells);

  Fnv1a section_digest;
  for (size_t n : sizes) {
    MarkovPoint point;
    point.num_cells = n;
    point.build_seconds = TimeIt([&ifs, n] {
      markov::SparseUlamOperator scratch(ifs, 0.0, 1.0, n);
      (void)scratch;
    });
    const markov::SparseUlamOperator op(ifs, 0.0, 1.0, n);
    point.nonzeros = op.transition().nonzeros();

    // A tilted (non-uniform) probability vector: uniform would be the
    // fixed point and make the Propagate comparison vacuous.
    linalg::Vector x(n);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      x[i] = static_cast<double>(i % 7 + 1);
      total += x[i];
    }
    x /= total;

    const size_t reps =
        std::max<size_t>(1, 4000000 / std::max<size_t>(point.nonzeros, 1));
    linalg::Vector y(n);
    const double reps_seconds = TimeIt([&op, &x, &y, reps] {
      for (size_t rep = 0; rep < reps; ++rep) y = op.adjoint().Multiply(x);
    });
    point.matvec_seconds = reps_seconds / static_cast<double>(reps);
    point.matvec_entries_per_sec =
        point.matvec_seconds > 0.0
            ? static_cast<double>(point.nonzeros) / point.matvec_seconds
            : 0.0;

    const linalg::SparseStationaryResult stationary = op.StationarySolve();
    if (!stationary.converged || !stationary.distribution.has_value()) {
      std::fprintf(stderr,
                   "  ERROR: markov stationary solve failed at %zu cells\n",
                   n);
      section.stationary_converged = false;
      section.runs.push_back(point);
      continue;
    }
    point.solver_iterations = stationary.iterations;
    const linalg::Vector& pi = *stationary.distribution;
    point.measure_digest = DigestVector(pi);
    point.spectral_gap =
        linalg::SparseSubdominantModulus(op.transition(), pi).spectral_gap;

    // Dense-oracle gate: entry-for-entry matrix equality and bitwise
    // Propagate equality against the dense Ulam path.
    if (n <= kDenseOracleLimit) {
      const markov::UlamApproximation dense(ifs, 0.0, 1.0, n);
      const linalg::Matrix& reference = dense.chain().transition();
      bool matches = true;
      for (size_t r = 0; r < n && matches; ++r) {
        for (size_t c = 0; c < n; ++c) {
          if (op.transition().At(r, c) != reference(r, c)) {
            matches = false;
            break;
          }
        }
      }
      const linalg::Vector sparse_step = op.Propagate(x, kPropagateSteps);
      const linalg::Vector dense_step =
          dense.chain().Propagate(x, kPropagateSteps);
      matches = matches && std::memcmp(sparse_step.data().data(),
                                       dense_step.data().data(),
                                       n * sizeof(double)) == 0;
      const std::optional<linalg::Vector> dense_pi =
          dense.chain().StationaryDistribution();
      if (dense_pi.has_value()) {
        for (size_t i = 0; i < n; ++i) {
          if (std::fabs(pi[i] - (*dense_pi)[i]) > 1e-9) matches = false;
        }
      } else {
        matches = false;
      }
      if (!matches) {
        std::fprintf(stderr,
                     "  ERROR: sparse Ulam diverged from the dense oracle "
                     "at %zu cells\n",
                     n);
        section.sparse_matches_dense = false;
      }
    }

    // Thread-invariance gate: build, matvec and stationary solve must
    // reproduce the serial digests bit for bit at every thread count. A
    // small chunk size forces multi-chunk dispatch even at 100 cells.
    const uint64_t build_reference = DigestSparseMatrix(op.transition());
    const uint64_t matvec_reference = DigestVector(y);
    for (size_t threads : kThreadSweep) {
      markov::SparseUlamOptions build_options;
      build_options.num_threads = threads;
      const markov::SparseUlamOperator rebuilt(ifs, 0.0, 1.0, n,
                                               build_options);
      linalg::SparseProductOptions product;
      product.num_threads = threads;
      product.chunk_size = 64;
      linalg::SparseSolverOptions solver;
      solver.product = product;
      const linalg::SparseStationaryResult rerun =
          rebuilt.StationarySolve(solver);
      const bool invariant =
          DigestSparseMatrix(rebuilt.transition()) == build_reference &&
          DigestVector(rebuilt.adjoint().Multiply(x, product)) ==
              matvec_reference &&
          rerun.distribution.has_value() &&
          DigestVector(*rerun.distribution) == point.measure_digest;
      if (!invariant) {
        std::fprintf(stderr,
                     "  ERROR: markov digests moved at %zu cells, "
                     "%zu threads\n",
                     n, threads);
        section.deterministic_across_thread_counts = false;
      }
    }

    section_digest.Mix(point.num_cells);
    section_digest.Mix(point.nonzeros);
    section_digest.Mix(point.measure_digest);
    std::fprintf(stderr,
                 "  markov cells=%zu nnz=%zu build %.4fs matvec %.1fM "
                 "entries/s solve %d iters gap %.4f\n",
                 n, point.nonzeros, point.build_seconds,
                 point.matvec_entries_per_sec / 1e6, point.solver_iterations,
                 point.spectral_gap);
    section.runs.push_back(point);
  }
  section.digest = section_digest.hash();
  return section;
}

}  // namespace

int main(int argc, char** argv) {
  long num_trials = 32;
  long num_users = 200;
  long max_threads =
      static_cast<long>(eqimpact::runtime::ThreadPool::HardwareConcurrency());
  long within_users = 1000000;
  long fit_rows = 12000000;
  if (argc > 1) num_trials = std::atol(argv[1]);
  if (argc > 2) num_users = std::atol(argv[2]);
  // Optional override of the sweep ceiling (e.g. to demonstrate
  // oversubscription or to pin CI to a fixed thread count).
  if (argc > 3) max_threads = std::atol(argv[3]);
  // Cohort size of the within-trial section; 0 skips it.
  if (argc > 4) within_users = std::atol(argv[4]);
  // Accumulated-history size of the fit_scaling section; 0 skips it.
  if (argc > 5) fit_rows = std::atol(argv[5]);
  // Largest Ulam discretisation of the markov_scaling section; 0 skips it.
  long markov_cells = 100000;
  if (argc > 6) markov_cells = std::atol(argv[6]);
  if (num_trials <= 0 || num_users <= 0 || max_threads <= 0 ||
      within_users < 0 || fit_rows < 0 || markov_cells < 0) {
    std::fprintf(
        stderr,
        "usage: bench_perf [num_trials] [num_users] [max_threads] "
        "[within_users] [fit_rows] [markov_cells]\n"
        "       the first three must be positive; the rest >= 0\n");
    return 2;
  }
  const size_t hw = static_cast<size_t>(max_threads);
  const std::vector<size_t> thread_counts = ThreadCounts(hw);

  // --- Section 1: multi-trial scaling (trial-level parallelism). -------
  eqimpact::sim::MultiTrialOptions options;
  options.num_trials = static_cast<size_t>(num_trials);
  options.loop.num_users = static_cast<size_t>(num_users);
  options.master_seed = 42;
  // Raw series stay on for this small workload so the digest covers the
  // exact per-user trajectories in addition to the streaming aggregate.
  options.keep_raw_series = true;

  std::vector<ScalingPoint> scaling;
  double sequential_seconds = 0.0;
  for (size_t threads : thread_counts) {
    options.num_threads = threads;
    eqimpact::sim::MultiTrialResult result;
    ScalingPoint point;
    point.num_threads = threads;
    point.seconds =
        TimeIt([&options, &result] { result = RunMultiTrial(options); });
    point.items_per_sec = static_cast<double>(num_trials) / point.seconds;
    point.digest = Digest(result);
    if (threads == 1) sequential_seconds = point.seconds;
    point.speedup =
        point.seconds > 0.0 ? sequential_seconds / point.seconds : 0.0;
    scaling.push_back(point);
    std::fprintf(stderr,
                 "  multi_trial threads=%zu %.3fs (%.2f trials/s, %.2fx)\n",
                 threads, point.seconds, point.items_per_sec, point.speedup);
  }
  const bool multi_deterministic = AllDigestsEqual(scaling);

  // --- Section 2: within-trial scaling (chunk-level parallelism). ------
  // One large-cohort trial, per-user series disabled; the per-year
  // cross-sections stream into an accumulator. One rep per thread count
  // (the cohort is large enough to swamp timer noise).
  std::vector<ScalingPoint> within;
  bool within_deterministic = true;
  size_t within_years = 0;
  if (within_users > 0) {
    eqimpact::credit::CreditLoopOptions loop_options;
    loop_options.num_users = static_cast<size_t>(within_users);
    loop_options.seed = 42;
    loop_options.keep_user_adr = false;
    within_years = static_cast<size_t>(loop_options.last_year -
                                       loop_options.first_year) +
                   1;
    const double user_years = static_cast<double>(within_users) *
                              static_cast<double>(within_years);
    double within_sequential = 0.0;
    for (size_t threads : thread_counts) {
      loop_options.num_threads = threads;
      eqimpact::credit::CreditScoringLoop loop(loop_options);
      eqimpact::stats::AdrAccumulator adr(eqimpact::credit::kNumRaces,
                                          within_years, 64);
      Clock::time_point start = Clock::now();
      eqimpact::credit::CreditLoopResult result = loop.Run(
          [&adr](const eqimpact::credit::YearSnapshot& snapshot) {
            adr.AddCrossSection(snapshot.step, snapshot.user_adr,
                                snapshot.race_ids);
          });
      ScalingPoint point;
      point.num_threads = threads;
      point.seconds = SecondsSince(start);
      point.items_per_sec = user_years / point.seconds;
      point.digest = Digest(result, adr);
      if (threads == 1) within_sequential = point.seconds;
      point.speedup =
          point.seconds > 0.0 ? within_sequential / point.seconds : 0.0;
      within.push_back(point);
      std::fprintf(
          stderr,
          "  within_trial threads=%zu %.3fs (%.0f user-years/s, %.2fx)\n",
          threads, point.seconds, point.items_per_sec, point.speedup);
      if (result.user_adr.empty() == false) {
        std::fprintf(stderr, "  ERROR: streaming run materialized series\n");
        return 2;
      }
    }
    within_deterministic = AllDigestsEqual(within);
  }
  // Sampled before fit_scaling materializes its raw baseline dataset, so
  // this reflects the streaming trial alone (getrusage peaks are
  // process-wide high-water marks).
  const double within_peak_rss = PeakRssMb();

  // --- Section 2b: shard scaling (population sharding). ----------------
  // The same within-trial workload, one thread, swept over shard counts:
  // sharding regroups execution (contiguous chunk ranges, shard-order
  // merge) and must never move a bit. A fourth leg checkpoints the
  // 4-shard trial mid-run and resumes it 2-sharded; the digest must
  // still match. Runs before fit_scaling allocates, so the per-shard
  // RSS high-water marks reflect the streaming trial alone.
  struct ShardPoint {
    size_t num_shards = 0;
    double seconds = 0.0;
    double items_per_sec = 0.0;
    double speedup = 1.0;
    uint64_t digest = 0;
    double peak_rss_mb = 0.0;
  };
  std::vector<ShardPoint> shard_runs;
  bool shard_matches_unsharded = true;
  bool shard_deterministic = true;
  bool checkpoint_resume_matches = true;
  if (within_users > 0) {
    eqimpact::credit::CreditLoopOptions loop_options;
    loop_options.num_users = static_cast<size_t>(within_users);
    loop_options.seed = 42;
    loop_options.keep_user_adr = false;
    loop_options.num_threads = 1;
    const double user_years = static_cast<double>(within_users) *
                              static_cast<double>(within_years);
    // Runs the trial streaming into `adr` (pre-seeded on the resume leg
    // with the checkpointed partial accumulator, mirroring the
    // experiment driver) and returns the digest over result + adr.
    auto run_digest = [&](const eqimpact::credit::CreditLoopOptions& options,
                          eqimpact::stats::AdrAccumulator* adr,
                          double* seconds) {
      eqimpact::credit::CreditScoringLoop loop(options);
      Clock::time_point start = Clock::now();
      eqimpact::credit::CreditLoopResult result = loop.Run(
          [adr](const eqimpact::credit::YearSnapshot& snapshot) {
            adr->AddCrossSection(snapshot.step, snapshot.user_adr,
                                 snapshot.race_ids);
          });
      if (seconds != nullptr) *seconds = SecondsSince(start);
      return Digest(result, *adr);
    };
    double shard_sequential = 0.0;
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      loop_options.num_shards = shards;
      ShardPoint point;
      point.num_shards = shards;
      eqimpact::stats::AdrAccumulator adr(eqimpact::credit::kNumRaces,
                                          within_years, 64);
      point.digest = run_digest(loop_options, &adr, &point.seconds);
      point.items_per_sec = user_years / point.seconds;
      point.peak_rss_mb = PeakRssMb();
      if (shards == 1) shard_sequential = point.seconds;
      point.speedup =
          point.seconds > 0.0 ? shard_sequential / point.seconds : 0.0;
      shard_runs.push_back(point);
      std::fprintf(
          stderr,
          "  shard_scaling shards=%zu %.3fs (%.0f user-years/s, rss %.1f "
          "MB)\n",
          shards, point.seconds, point.items_per_sec, point.peak_rss_mb);
    }
    for (const ShardPoint& point : shard_runs) {
      if (point.digest != shard_runs.front().digest) {
        shard_deterministic = false;
      }
    }
    // The unsharded reference: the within-trial section already ran this
    // exact workload unsharded at every thread count.
    if (!within.empty() && shard_runs.front().digest != within.front().digest) {
      shard_matches_unsharded = false;
    }
    if (!shard_deterministic) shard_matches_unsharded = false;

    // Checkpoint leg: capture the 4-shard trial's engine snapshot AND
    // the partial accumulator at mid-run (the same pair the experiment
    // driver persists), then resume 2-sharded — the snapshot format is
    // shard-agnostic (no RNG cursors, no shard state), so the digest
    // must not move.
    std::vector<uint8_t> mid_blob;
    std::vector<uint8_t> mid_adr_blob;
    const size_t capture_year = (within_years + 1) / 2;
    eqimpact::stats::AdrAccumulator ck_adr(eqimpact::credit::kNumRaces,
                                           within_years, 64);
    loop_options.num_shards = 4;
    loop_options.checkpoint_sink =
        [&mid_blob, &mid_adr_blob, &ck_adr, capture_year](
            size_t years_completed, const std::vector<uint8_t>& state) {
          if (years_completed != capture_year) return;
          mid_blob = state;
          eqimpact::base::BinaryWriter writer;
          ck_adr.Serialize(&writer);
          mid_adr_blob = writer.TakeBuffer();
        };
    const uint64_t checkpointed_digest =
        run_digest(loop_options, &ck_adr, nullptr);
    eqimpact::stats::AdrAccumulator resumed_adr(eqimpact::credit::kNumRaces,
                                                within_years, 64);
    eqimpact::base::BinaryReader reader(mid_adr_blob.data(),
                                        mid_adr_blob.size());
    const bool adr_restored = resumed_adr.Deserialize(&reader);
    loop_options.checkpoint_sink = nullptr;
    loop_options.num_shards = 2;
    loop_options.resume_state = &mid_blob;
    const uint64_t resumed_digest =
        run_digest(loop_options, &resumed_adr, nullptr);
    checkpoint_resume_matches =
        !mid_blob.empty() && adr_restored &&
        checkpointed_digest == shard_runs.front().digest &&
        resumed_digest == shard_runs.front().digest;
    std::fprintf(stderr,
                 "  shard_scaling checkpoint@year%zu resume 4->2 shards: %s\n",
                 capture_year,
                 checkpoint_resume_matches ? "digest equal" : "MISMATCH");
  }

  // --- Section 3: fit scaling (sufficient-statistics refit). -----------
  // The PR 2 baseline refit the scorecard by raw-row IRLS over the
  // accumulated history; here the same history collapses into weighted
  // (ADR, code) groups and the grouped fit sweeps thread counts. Thread
  // counts 2..8 are swept even on 1-core machines (oversubscribed): the
  // timing is then meaningless but the coefficient digest still proves
  // the ordered reduction's thread-count invariance.
  std::vector<ScalingPoint> fit_runs;
  bool fit_deterministic = true;
  size_t fit_groups = 0;
  int raw_fit_iterations = 0;
  double raw_fit_seconds = 0.0;
  double binned_build_seconds = 0.0;
  if (fit_rows > 0) {
    eqimpact::ml::Dataset raw =
        SyntheticLoopHistory(static_cast<size_t>(fit_rows), 2024);
    eqimpact::ml::LogisticRegressionOptions fit_options;
    raw_fit_seconds = TimeIt([&raw, &fit_options, &raw_fit_iterations] {
      eqimpact::ml::LogisticRegression model(fit_options);
      raw_fit_iterations = model.Fit(raw).iterations;
    });
    std::fprintf(stderr, "  fit_scaling raw %.3fs (%d iterations)\n",
                 raw_fit_seconds, raw_fit_iterations);

    eqimpact::ml::BinnedDataset binned(1);  // Replaced by the build below.
    binned_build_seconds = TimeIt([&raw, &binned] {
      binned = eqimpact::ml::BinnedDataset::FromDataset(raw);
    });
    fit_groups = binned.num_groups();
    std::fprintf(stderr, "  fit_scaling build %.3fs (%zu groups)\n",
                 binned_build_seconds, fit_groups);

    std::vector<size_t> fit_threads{1, 2, 4, 8};
    if (hw > 8) fit_threads.push_back(hw);
    // A chunk size far below the group count (a few hundred groups)
    // makes the sweep genuinely fan out: every multi-thread point runs a
    // real multi-chunk ordered reduction, so equal digests actually
    // prove the thread-count invariance.
    fit_options.rows_per_chunk = 8;
    double fit_sequential = 0.0;
    for (size_t threads : fit_threads) {
      fit_options.num_threads = threads;
      // One grouped fit is microseconds; time a batch of cold refits.
      constexpr int kReps = 2000;
      eqimpact::ml::LogisticRegression model(fit_options);
      ScalingPoint point;
      point.num_threads = threads;
      point.seconds = TimeIt([&binned, &fit_options] {
        for (int rep = 0; rep < kReps; ++rep) {
          eqimpact::ml::LogisticRegression cold(fit_options);
          cold.Fit(binned);
        }
      }) / kReps;
      model.Fit(binned);
      point.digest = CoefficientDigest(model);
      point.items_per_sec =
          point.seconds > 0.0 ? 1.0 / point.seconds : 0.0;
      if (threads == 1) fit_sequential = point.seconds;
      point.speedup =
          point.seconds > 0.0 ? fit_sequential / point.seconds : 0.0;
      fit_runs.push_back(point);
      std::fprintf(stderr,
                   "  fit_scaling threads=%zu %.6fs/fit (%.0f fits/s)\n",
                   threads, point.seconds, point.items_per_sec);
    }
    fit_deterministic = AllDigestsEqual(fit_runs);
  }

  // --- Section 4: market scaling (scenario API, trial parallelism). ----
  // The matching-market scenario through the generic experiment driver:
  // the trial-level parallelism (and determinism contract) the market
  // gained with the scenario API.
  constexpr size_t kMarketWorkers = 200;
  constexpr size_t kMarketRounds = 200;
  std::vector<ScalingPoint> market_runs;
  double market_sequential = 0.0;
  for (size_t threads : thread_counts) {
    eqimpact::sim::MatchingMarketScenarioOptions scenario_options;
    scenario_options.market.num_workers = kMarketWorkers;
    scenario_options.market.rounds = kMarketRounds;
    eqimpact::sim::MatchingMarketScenario scenario(scenario_options);
    eqimpact::sim::ExperimentOptions experiment_options;
    experiment_options.num_trials = static_cast<size_t>(num_trials);
    experiment_options.master_seed = 42;
    experiment_options.num_threads = threads;
    eqimpact::sim::ExperimentResult market_result;
    ScalingPoint point;
    point.num_threads = threads;
    point.seconds = TimeIt([&scenario, &experiment_options, &market_result] {
      market_result =
          eqimpact::sim::RunExperiment(&scenario, experiment_options);
    });
    point.items_per_sec = static_cast<double>(num_trials) / point.seconds;
    point.digest = eqimpact::sim::ExperimentDigest(market_result);
    if (threads == 1) market_sequential = point.seconds;
    point.speedup =
        point.seconds > 0.0 ? market_sequential / point.seconds : 0.0;
    market_runs.push_back(point);
    std::fprintf(stderr,
                 "  market threads=%zu %.3fs (%.2f trials/s, %.2fx)\n",
                 threads, point.seconds, point.items_per_sec, point.speedup);
  }
  const bool market_deterministic = AllDigestsEqual(market_runs);

  // --- Section 5: simd scaling (kernel layer scalar vs vector). --------
  const SimdSection simd_section = RunSimdSuite(1 << 16);

  // --- Section 6: phi + fold scaling (the PR 6 hot paths). -------------
  const PhiSection phi_section = RunPhiSuite(1 << 18);
  const FoldSection fold_section = RunFoldSuite();

  // --- Section 7: serving scaling (the experiment service, PR 8), ------
  // plus the PR 10 transport comparison: connection-count sweep over
  // both transports with per-point byte-equality gates.
  const ServingSection serving_section = RunServingSuite();
  const ConnectionSweepSection connection_sweep = RunConnectionSweep();

  // --- Section 8: markov scaling (the sparse Ulam engine, PR 9). -------
  MarkovSection markov_section;
  if (markov_cells > 0) {
    markov_section = RunMarkovSuite(static_cast<size_t>(markov_cells));
  }
  const bool markov_ok = markov_section.sparse_matches_dense &&
                         markov_section.deterministic_across_thread_counts &&
                         markov_section.stationary_converged;

  std::vector<MicroResult> micro = RunMicroSuite();

  const bool deterministic =
      multi_deterministic && within_deterministic && fit_deterministic &&
      market_deterministic && simd_section.vector_matches_scalar &&
      phi_section.vector_matches_scalar &&
      phi_section.max_ulp_vs_libm <= phi_section.ulp_bound &&
      fold_section.dense_matches_hashed && shard_matches_unsharded &&
      shard_deterministic && checkpoint_resume_matches &&
      serving_section.served_digest_matches_cli &&
      connection_sweep.payloads_match && markov_ok;

  // Emit the JSON document on stdout.
  std::printf("{\n");
  std::printf("  \"benchmark\": \"bench_perf\",\n");
  std::printf("  \"hardware_concurrency\": %zu,\n",
              eqimpact::runtime::ThreadPool::HardwareConcurrency());
  std::printf("  \"max_threads_swept\": %zu,\n", hw);
  std::printf("  \"multi_trial_scaling\": {\n");
  std::printf("    \"num_trials\": %ld,\n", num_trials);
  std::printf("    \"num_users\": %ld,\n", num_users);
  std::printf("    \"deterministic_across_thread_counts\": %s,\n",
              multi_deterministic ? "true" : "false");
  std::printf("    \"digest\": \"%016" PRIx64 "\",\n",
              scaling.front().digest);
  PrintScalingRuns(scaling, "trials_per_sec");
  std::printf("  },\n");
  if (!within.empty()) {
    std::printf("  \"within_trial_scaling\": {\n");
    std::printf("    \"num_users\": %ld,\n", within_users);
    std::printf("    \"num_years\": %zu,\n", within_years);
    std::printf("    \"streaming\": true,\n");
    std::printf("    \"deterministic_across_thread_counts\": %s,\n",
                within_deterministic ? "true" : "false");
    std::printf("    \"digest\": \"%016" PRIx64 "\",\n",
                within.front().digest);
    std::printf("    \"peak_rss_mb\": %.1f,\n", within_peak_rss);
    PrintScalingRuns(within, "user_years_per_sec");
    std::printf("  },\n");
  }
  if (!shard_runs.empty()) {
    std::printf("  \"shard_scaling\": {\n");
    std::printf("    \"num_users\": %ld,\n", within_users);
    std::printf("    \"num_years\": %zu,\n", within_years);
    std::printf("    \"num_threads\": 1,\n");
    std::printf("    \"sharded_matches_unsharded\": %s,\n",
                shard_matches_unsharded ? "true" : "false");
    std::printf("    \"deterministic_across_shard_counts\": %s,\n",
                shard_deterministic ? "true" : "false");
    std::printf("    \"checkpoint_resume_matches\": %s,\n",
                checkpoint_resume_matches ? "true" : "false");
    std::printf("    \"digest\": \"%016" PRIx64 "\",\n",
                shard_runs.front().digest);
    std::printf("    \"runs\": [\n");
    for (size_t i = 0; i < shard_runs.size(); ++i) {
      const ShardPoint& p = shard_runs[i];
      // peak_rss_mb is the process high-water mark *after* this run —
      // monotone across runs by construction (getrusage semantics);
      // flat values across shard counts are the expected good outcome.
      std::printf(
          "      {\"num_shards\": %zu, \"wall_seconds\": %.6f, "
          "\"user_years_per_sec\": %.3f, \"speedup\": %.3f, "
          "\"peak_rss_mb\": %.1f}%s\n",
          p.num_shards, p.seconds, p.items_per_sec, p.speedup, p.peak_rss_mb,
          i + 1 < shard_runs.size() ? "," : "");
    }
    std::printf("    ]\n");
    std::printf("  },\n");
  }
  if (!fit_runs.empty()) {
    const double binned_fit_seconds = fit_runs.front().seconds;
    std::printf("  \"fit_scaling\": {\n");
    std::printf("    \"num_rows\": %ld,\n", fit_rows);
    std::printf("    \"num_groups\": %zu,\n", fit_groups);
    std::printf("    \"raw_fit_seconds\": %.6f,\n", raw_fit_seconds);
    std::printf("    \"raw_fit_iterations\": %d,\n", raw_fit_iterations);
    std::printf("    \"raw_rows_per_sec\": %.1f,\n",
                raw_fit_seconds > 0.0
                    ? static_cast<double>(fit_rows) / raw_fit_seconds
                    : 0.0);
    std::printf("    \"binned_build_seconds\": %.6f,\n",
                binned_build_seconds);
    std::printf("    \"binned_fit_seconds\": %.6f,\n", binned_fit_seconds);
    std::printf("    \"speedup_vs_raw\": %.1f,\n",
                binned_fit_seconds > 0.0
                    ? raw_fit_seconds / binned_fit_seconds
                    : 0.0);
    std::printf("    \"speedup_vs_raw_including_build\": %.1f,\n",
                binned_build_seconds + binned_fit_seconds > 0.0
                    ? raw_fit_seconds /
                          (binned_build_seconds + binned_fit_seconds)
                    : 0.0);
    std::printf("    \"deterministic_across_thread_counts\": %s,\n",
                fit_deterministic ? "true" : "false");
    std::printf("    \"digest\": \"%016" PRIx64 "\",\n",
                fit_runs.front().digest);
    PrintScalingRuns(fit_runs, "fits_per_sec");
    std::printf("  },\n");
  }
  std::printf("  \"market_scaling\": {\n");
  std::printf("    \"num_trials\": %ld,\n", num_trials);
  std::printf("    \"num_workers\": %zu,\n", kMarketWorkers);
  std::printf("    \"num_rounds\": %zu,\n", kMarketRounds);
  std::printf("    \"deterministic_across_thread_counts\": %s,\n",
              market_deterministic ? "true" : "false");
  std::printf("    \"digest\": \"%016" PRIx64 "\",\n",
              market_runs.front().digest);
  PrintScalingRuns(market_runs, "trials_per_sec");
  std::printf("  },\n");
  {
    namespace simd = eqimpact::runtime::simd;
    const simd::Backend active = simd::ActiveBackend();
    std::printf("  \"simd_scaling\": {\n");
    std::printf("    \"compiled_backend\": \"%s\",\n",
                simd::BackendName(simd::CompiledBackend()));
    std::printf("    \"active_backend\": \"%s\",\n",
                simd::BackendName(active));
    std::printf("    \"lanes\": %zu,\n", simd::LaneWidth(active));
    std::printf("    \"num_values\": %zu,\n", simd_section.num_values);
    std::printf("    \"vector_matches_scalar\": %s,\n",
                simd_section.vector_matches_scalar ? "true" : "false");
    std::printf("    \"digest\": \"%016" PRIx64 "\",\n",
                simd_section.digest);
    std::printf("    \"kernels\": [\n");
    for (size_t i = 0; i < simd_section.kernels.size(); ++i) {
      const SimdKernelPoint& point = simd_section.kernels[i];
      const double scalar_rate =
          point.scalar_seconds > 0.0
              ? static_cast<double>(simd_section.num_values) /
                    point.scalar_seconds
              : 0.0;
      const double simd_rate =
          point.simd_seconds > 0.0
              ? static_cast<double>(simd_section.num_values) /
                    point.simd_seconds
              : 0.0;
      std::printf(
          "      {\"name\": \"%s\", \"scalar_elems_per_sec\": %.1f, "
          "\"simd_elems_per_sec\": %.1f, \"speedup\": %.3f}%s\n",
          point.name.c_str(), scalar_rate, simd_rate,
          point.simd_seconds > 0.0
              ? point.scalar_seconds / point.simd_seconds
              : 0.0,
          i + 1 < simd_section.kernels.size() ? "," : "");
    }
    std::printf("    ]\n");
    std::printf("  },\n");
  }
  std::printf("  \"phi_scaling\": {\n");
  std::printf("    \"num_values\": %zu,\n", phi_section.num_values);
  std::printf("    \"vector_matches_scalar\": %s,\n",
              phi_section.vector_matches_scalar ? "true" : "false");
  std::printf("    \"max_ulp_vs_libm\": %" PRId64 ",\n",
              phi_section.max_ulp_vs_libm);
  std::printf("    \"ulp_bound\": %d,\n", phi_section.ulp_bound);
  std::printf("    \"scalar_elems_per_sec\": %.1f,\n",
              phi_section.scalar_rate);
  std::printf("    \"vector_elems_per_sec\": %.1f,\n",
              phi_section.vector_rate);
  std::printf("    \"libm_elems_per_sec\": %.1f,\n", phi_section.libm_rate);
  std::printf("    \"digest\": \"%016" PRIx64 "\"\n", phi_section.digest);
  std::printf("  },\n");
  std::printf("  \"fold_scaling\": {\n");
  std::printf("    \"num_users\": %zu,\n", fold_section.num_users);
  std::printf("    \"num_user_years\": %zu,\n", fold_section.num_user_years);
  std::printf("    \"dense_matches_hashed\": %s,\n",
              fold_section.dense_matches_hashed ? "true" : "false");
  std::printf("    \"hashed_user_years_per_sec\": %.1f,\n",
              fold_section.hashed_rate);
  std::printf("    \"dense_user_years_per_sec\": %.1f,\n",
              fold_section.dense_rate);
  std::printf("    \"digest\": \"%016" PRIx64 "\"\n", fold_section.digest);
  std::printf("  },\n");
  std::printf("  \"serving_scaling\": {\n");
  std::printf("    \"num_jobs\": %zu,\n", serving_section.num_jobs);
  std::printf("    \"num_distinct\": %zu,\n", serving_section.num_distinct);
  std::printf("    \"num_workers\": %zu,\n", serving_section.num_workers);
  std::printf("    \"num_connections\": %zu,\n",
              serving_section.num_connections);
  std::printf("    \"served_digest_matches_cli\": %s,\n",
              serving_section.served_digest_matches_cli ? "true" : "false");
  std::printf("    \"runs_started\": %zu,\n", serving_section.runs_started);
  std::printf("    \"cache_hit_rate\": %.3f,\n",
              serving_section.cache_hit_rate);
  std::printf("    \"wall_seconds\": %.6f,\n", serving_section.wall_seconds);
  std::printf("    \"jobs_per_sec\": %.3f,\n", serving_section.jobs_per_sec);
  std::printf("    \"p50_latency_ms\": %.3f,\n",
              serving_section.p50_latency_ms);
  std::printf("    \"p95_latency_ms\": %.3f,\n",
              serving_section.p95_latency_ms);
  // PR 10 additions: transport comparison fields are additive so the
  // section's digest comparability (num_jobs/num_distinct keyed) is
  // untouched by the transport change.
  std::printf("    \"connection_sweep\": [\n");
  for (size_t i = 0; i < connection_sweep.points.size(); ++i) {
    const ConnectionSweepPoint& p = connection_sweep.points[i];
    std::printf(
        "      {\"transport\": \"%s\", \"connections\": %zu, "
        "\"num_jobs\": %zu, \"wall_seconds\": %.6f, "
        "\"jobs_per_sec\": %.3f, \"p50_latency_ms\": %.3f, "
        "\"p95_latency_ms\": %.3f, \"payloads_match\": %s}%s\n",
        p.transport.c_str(), p.connections, p.num_jobs, p.wall_seconds,
        p.jobs_per_sec, p.p50_latency_ms, p.p95_latency_ms,
        p.payloads_match ? "true" : "false",
        i + 1 < connection_sweep.points.size() ? "," : "");
  }
  std::printf("    ],\n");
  std::printf("    \"connection_sweep_payloads_match\": %s,\n",
              connection_sweep.payloads_match ? "true" : "false");
  std::printf("    \"epoll_vs_threads_ratio_64\": %.3f,\n",
              connection_sweep.epoll_vs_threads_ratio_64);
  std::printf("    \"digest\": \"%016" PRIx64 "\"\n",
              serving_section.digest);
  std::printf("  },\n");
  if (!markov_section.runs.empty()) {
    std::printf("  \"markov_scaling\": {\n");
    std::printf("    \"max_cells\": %zu,\n", markov_section.max_cells);
    std::printf("    \"num_maps\": 2,\n");
    std::printf("    \"sparse_matches_dense\": %s,\n",
                markov_section.sparse_matches_dense ? "true" : "false");
    std::printf(
        "    \"deterministic_across_thread_counts\": %s,\n",
        markov_section.deterministic_across_thread_counts ? "true" : "false");
    std::printf("    \"stationary_converged\": %s,\n",
                markov_section.stationary_converged ? "true" : "false");
    std::printf("    \"digest\": \"%016" PRIx64 "\",\n",
                markov_section.digest);
    std::printf("    \"runs\": [\n");
    for (size_t i = 0; i < markov_section.runs.size(); ++i) {
      const MarkovPoint& p = markov_section.runs[i];
      std::printf(
          "      {\"num_cells\": %zu, \"nonzeros\": %zu, "
          "\"build_seconds\": %.6f, \"matvec_entries_per_sec\": %.1f, "
          "\"solver_iterations\": %d, \"spectral_gap\": %.6f, "
          "\"measure_digest\": \"%016" PRIx64 "\"}%s\n",
          p.num_cells, p.nonzeros, p.build_seconds,
          p.matvec_entries_per_sec, p.solver_iterations, p.spectral_gap,
          p.measure_digest,
          i + 1 < markov_section.runs.size() ? "," : "");
    }
    std::printf("    ]\n");
    std::printf("  },\n");
  }
  std::printf("  \"micro\": [\n");
  for (size_t i = 0; i < micro.size(); ++i) {
    std::printf(
        "    {\"name\": \"%s\", \"wall_seconds\": %.6f, "
        "\"items_per_sec\": %.1f}%s\n",
        micro[i].name.c_str(), micro[i].seconds, micro[i].items_per_sec,
        i + 1 < micro.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return deterministic ? 0 : 1;
}
