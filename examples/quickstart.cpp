// Quickstart: the closed-loop view of an AI system in ~60 lines.
//
// Builds the paper's Table I scorecard, runs one trial of the Section VII
// credit-scoring loop, and audits the outcome for equal impact across
// races (the protected attribute the lender never sees).
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>

#include "core/auditors.h"
#include "credit/credit_loop.h"
#include "credit/race.h"
#include "linalg/vector.h"
#include "ml/scorecard.h"

int main() {
  using namespace eqimpact;

  // 1. A scorecard is just named factors + a cut-off (paper Table I).
  ml::Scorecard table_one(
      {{"History", "x Average Default Rate", -8.17},
       {"Income", "> $15K", 5.77}},
      /*cutoff=*/0.4);
  linalg::Vector applicant{0.1, 1.0};  // ADR 0.1, income $50K.
  std::printf("Table I score for the paper's example user: %.3f -> %s\n\n",
              table_one.Score(applicant),
              table_one.Approve(applicant) ? "approve" : "decline");

  // 2. Run the paper's closed loop once: census incomes, yearly logistic
  //    retraining, Gaussian repayment behaviour, accumulating ADR filter.
  credit::CreditLoopOptions options;
  options.num_users = 1000;
  options.seed = 7;
  credit::CreditLoopResult result =
      credit::CreditScoringLoop(options).Run();

  std::printf("Race-wise average default rates over %zu years:\n",
              result.years.size());
  for (size_t r = 0; r < credit::kNumRaces; ++r) {
    std::printf("  %-12s 2002: %.3f   2020: %.3f\n",
                RaceName(static_cast<credit::Race>(r)).c_str(),
                result.race_adr[r].front(), result.race_adr[r].back());
  }

  // 3. Audit for equal impact (paper Definitions 3 and equation (13)):
  //    ADR_s(k) is already a running average, so audit its limits
  //    directly.
  core::EqualImpactCriteria criteria;
  criteria.coincidence_tolerance = 0.05;
  criteria.series_are_running_averages = true;
  core::EqualImpactReport joint =
      core::AuditEqualImpact(result.race_adr, criteria);
  std::printf("\nEqual-impact audit of the race-wise ADR series:\n");
  std::printf("  limits settle: %s, coincidence gap: %.4f -> equal impact "
              "across races: %s\n",
              joint.all_settled ? "yes" : "no", joint.coincidence_gap,
              joint.equal_impact ? "YES" : "NO");
  return 0;
}
