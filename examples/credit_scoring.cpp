// End-to-end reproduction of the paper's Section VII numerical
// illustration, as a library consumer would run it: five trials of 1000
// households over 2002-2020, race-wise and user-wise average default
// rates, the fitted scorecards, and the equal-treatment / equal-impact
// audits with their verdicts.

#include <cstdio>
#include <vector>

#include "core/auditors.h"
#include "credit/race.h"
#include "sim/multi_trial.h"
#include "sim/text_table.h"
#include "stats/time_series.h"

namespace {

using eqimpact::credit::kNumRaces;
using eqimpact::credit::Race;
using eqimpact::credit::RaceName;

}  // namespace

int main() {
  std::printf("Closed-loop credit scoring, Section VII protocol\n");
  std::printf("================================================\n\n");

  eqimpact::sim::MultiTrialOptions options;
  options.loop.num_users = 1000;
  options.num_trials = 5;
  options.master_seed = 42;
  // The per-user audit below needs the raw ADR series, which the
  // streaming default no longer materializes.
  options.keep_raw_series = true;
  eqimpact::sim::MultiTrialResult result =
      eqimpact::sim::RunMultiTrial(options);

  // Race-wise trajectories (Figure 3's data).
  eqimpact::sim::TextTable adr_table(
      {"Year", "BLACK", "WHITE", "ASIAN"});
  for (size_t k = 0; k < result.years.size(); ++k) {
    adr_table.AddRow(
        {eqimpact::sim::TextTable::Cell(result.years[k]),
         eqimpact::sim::TextTable::Cell(result.race_envelopes[0].mean[k], 4),
         eqimpact::sim::TextTable::Cell(result.race_envelopes[1].mean[k], 4),
         eqimpact::sim::TextTable::Cell(result.race_envelopes[2].mean[k],
                                        4)});
  }
  std::printf("Race-wise ADR (mean over trials):\n%s\n",
              adr_table.ToString().c_str());

  // The scorecard the first trial ended up with.
  const auto& cards = result.trials[0].scorecards;
  if (!cards.empty()) {
    std::printf("Final scorecard of trial 1 (year %d): "
                "History %.2f, Income %+.2f, cut-off %.1f\n\n",
                cards.back().year, cards.back().history_weight,
                cards.back().income_weight, options.loop.cutoff);
  }

  // Equal-impact audit across races (Definition 3 on the race aggregate).
  std::vector<std::vector<double>> race_means;
  for (size_t r = 0; r < kNumRaces; ++r) {
    race_means.push_back(result.race_envelopes[r].mean);
  }
  eqimpact::core::EqualImpactCriteria criteria;
  criteria.settle_window = 5;
  criteria.settle_tolerance = 0.02;
  criteria.coincidence_tolerance = 0.05;
  criteria.series_are_running_averages = true;  // ADR is an average already.
  eqimpact::core::EqualImpactReport impact =
      eqimpact::core::AuditEqualImpact(race_means, criteria);
  std::printf("Equal impact across races:\n");
  for (size_t r = 0; r < kNumRaces; ++r) {
    std::printf("  r(%s) = %.4f%s\n",
                RaceName(static_cast<Race>(r)).c_str(), impact.limits[r],
                impact.settled[r] ? "" : "  (not settled)");
  }
  std::printf("  coincidence gap %.4f -> equal impact: %s\n\n",
              impact.coincidence_gap, impact.equal_impact ? "YES" : "NO");

  // Initial-condition independence: audit the race aggregates across the
  // five independent trials (each trial is a fresh cohort).
  std::vector<std::vector<std::vector<double>>> runs;
  for (const auto& trial : result.trials) {
    runs.push_back(trial.race_adr);
  }
  eqimpact::core::InitialConditionReport independence =
      eqimpact::core::AuditInitialConditionIndependence(runs, 0.03);
  std::printf("Initial-condition independence across the %zu trials: "
              "max gap %.4f -> %s\n",
              runs.size(), independence.max_gap,
              independence.independent ? "independent" : "DEPENDENT");

  // Equal treatment (Definition 1) on the user-wise decisions is *not*
  // expected to hold — responses are stochastic — which is exactly the
  // paper's distinction. Show it on the first trial's user ADR series.
  eqimpact::core::EqualTreatmentReport treatment =
      eqimpact::core::AuditEqualTreatment(result.trials[0].user_adr, 1e-9);
  std::printf("\nEqual treatment (constant identical outcomes) on user "
              "series: %s (max gap %.3f)\n",
              treatment.constant_action ? "holds" : "does not hold",
              treatment.max_gap);
  std::printf("-> equal treatment and equal impact are different "
              "properties; the loop delivers the latter.\n");
  return 0;
}
