// Regulatory tooling on top of the closed loop: a full fairness
// compliance report for the credit-scoring system, a concept-drift audit
// of its training stream, and the two-sided matching market with the
// exploration intervention that restores equal impact.
//
// This is the operational reading of the paper's regulation theme (and
// of the EU AI Act Article 15 feedback-loop clause it quotes): a
// provider must be able to *measure* the loop's long-run impact, detect
// the drift its own outputs induce, and intervene.

#include <cstdio>
#include <vector>

#include "core/compliance_report.h"
#include "core/drift_monitor.h"
#include "credit/credit_loop.h"
#include "credit/race.h"
#include "market/matching_market.h"
#include "sim/text_table.h"
#include "stats/aggregate.h"

int main() {
  using namespace eqimpact;

  // ---------------------------------------------------------------- 1
  std::printf("1) Compliance report for the credit-scoring loop\n\n");
  credit::CreditLoopOptions options;
  options.num_users = 1000;
  options.seed = 11;
  credit::CreditLoopResult loop = credit::CreditScoringLoop(options).Run();

  core::ComplianceInputs inputs;
  inputs.user_outcomes = loop.user_adr;
  for (credit::Race race : loop.races) {
    inputs.class_of.push_back(static_cast<size_t>(race));
  }
  inputs.class_names = {"BLACK ALONE", "WHITE ALONE", "ASIAN ALONE"};
  inputs.impact_criteria.series_are_running_averages = true;
  inputs.impact_criteria.settle_window = 5;
  inputs.impact_criteria.settle_tolerance = 0.05;
  inputs.impact_criteria.coincidence_tolerance = 0.30;  // User-level spread.
  core::ComplianceVerdict verdict = core::AssessCompliance(inputs);
  std::printf("%s\n", RenderComplianceReport(verdict, inputs.class_names)
                          .c_str());
  std::printf(
      "   interpretation: over the paper's finite 19-year horizon some\n"
      "   *individual* trajectories are still moving (users who regained\n"
      "   approval late), so the strict user-level check fails — while\n"
      "   the class-level limits have settled and coincide, which is the\n"
      "   paper's equal-impact reading of Figures 3-5. Longer horizons\n"
      "   tighten the user-level verdict (see the auditors' tests).\n\n");

  // ---------------------------------------------------------------- 2
  std::printf("2) Concept drift in the loop's own training stream\n\n");
  // The filter's output (the per-user ADR cross-section) *is* next
  // year's training feature: monitor how the loop moves it over time.
  core::DriftMonitor monitor(0.15);
  for (size_t k = 0; k < loop.years.size(); ++k) {
    std::vector<double> cross = stats::CrossSection(loop.user_adr, k);
    auto measurement = monitor.Ingest(std::move(cross));
    if (measurement.has_value() && measurement->drift_alert) {
      std::printf("   year %d: drift alert (KS to previous %.3f)\n",
                  loop.years[k], measurement->ks_to_previous);
    }
  }
  std::printf("   steps monitored: %zu, any alert: %s\n",
              monitor.num_steps(), monitor.AnyAlert() ? "yes" : "no");
  std::printf("   max drift from the 2002 reference: KS = %.3f\n",
              monitor.MaxDriftFromReference());
  std::printf("   -> the loop demonstrably reshapes its own training\n"
              "      distribution: 'concept drift' is endogenous here.\n\n");

  // ---------------------------------------------------------------- 3
  std::printf("3) Two-sided matching market: exploration as mitigation\n\n");
  sim::TextTable table({"matching rule", "mean match rate", "Gini",
                        "min rate", "max rate"});
  for (auto [rule, name] :
       {std::pair{market::MatchingRule::kTopScore, "top-score"},
        std::pair{market::MatchingRule::kEpsilonGreedy,
                  "epsilon-greedy (0.3)"},
        std::pair{market::MatchingRule::kUniformRandom, "lottery"}}) {
    market::MatchingMarketOptions market_options;
    market_options.num_workers = 200;
    market_options.rounds = 800;
    market_options.exploration = 0.3;
    market_options.seed = 5;
    market::MatchingMarketResult result =
        RunMatchingMarket(rule, market_options);
    double lo = result.match_rate[0], hi = result.match_rate[0];
    for (double r : result.match_rate) {
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
    table.AddRow({name, sim::TextTable::Cell(result.mean_match_rate, 3),
                  sim::TextTable::Cell(result.match_rate_gini, 3),
                  sim::TextTable::Cell(lo, 3), sim::TextTable::Cell(hi, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "   reading: with identical worker skill, pure reputation ranking\n"
      "   locks early winners in (high Gini, some workers never matched\n"
      "   again) — the market analogue of the credit lock-out. A\n"
      "   randomised exploration share restores equal impact, exactly\n"
      "   as the stable randomized broadcast does for the ensemble.\n");
  return 0;
}
