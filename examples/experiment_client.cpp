// Loopback client of the experiment service (run_experiment --serve):
// builds one job spec from CLI flags (the same flag vocabulary as
// run_experiment), submits it over line-delimited JSON, streams the
// progress events to stderr and prints the result payload — the
// CLI-identical JSON document — to stdout. CI byte-diffs this output
// against a direct run_experiment run of the same spec (filtering only
// the single-line provenance field).
//
// Usage:
//   experiment_client (--port=P | --port-file=PATH)
//                     --scenario=NAME [--trials=N] [--seed=S] [--bins=B]
//                     [--threads=T] [--trial-threads=T] [--point-threads=P]
//                     [--set name=value]... [--sweep name=v1,v2,...]...
//                     [--id=TOKEN] [--quiet]
//   experiment_client (--port=P | --port-file=PATH) --request=JSON
//
// Exit status: 0 on a result event, 1 on a typed error event or
// transport failure, 2 on bad usage.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/json.h"

namespace {

using eqimpact::serve::Client;
using eqimpact::serve::ClientEvent;
using eqimpact::serve::JsonValue;

struct ClientSpec {
  size_t port = 0;
  std::string port_file;
  std::string raw_request;  ///< --request: sent verbatim, flags ignored.
  std::string id;
  std::string scenario;
  bool quiet = false;
  size_t trials = 0;         ///< 0 = omit (server default).
  bool have_seed = false;
  size_t seed = 0;
  size_t bins = 0;
  size_t threads = 0;
  bool have_threads = false;
  size_t trial_threads = 0;
  bool have_trial_threads = false;
  size_t point_threads = 0;
  bool have_point_threads = false;
  JsonValue set = JsonValue::Object();
  JsonValue sweep = JsonValue::Object();
  bool have_set = false;
  bool have_sweep = false;
};

bool ParseDouble(const std::string& text, double* value) {
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

bool ParseSize(const std::string& text, size_t* value) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  *value = static_cast<size_t>(parsed);
  return true;
}

bool ParseArgs(int argc, char** argv, ClientSpec* spec) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    auto parse_size_flag = [&arg, &value_of](const char* prefix,
                                             size_t* value) {
      if (!ParseSize(value_of(prefix), value)) {
        std::fprintf(stderr,
                     "error: bad %s value '%s' (want a non-negative "
                     "integer)\n",
                     prefix, value_of(prefix).c_str());
        return false;
      }
      return true;
    };
    if (arg.rfind("--port=", 0) == 0) {
      if (!parse_size_flag("--port=", &spec->port)) return false;
    } else if (arg.rfind("--port-file=", 0) == 0) {
      spec->port_file = value_of("--port-file=");
    } else if (arg.rfind("--request=", 0) == 0) {
      spec->raw_request = value_of("--request=");
    } else if (arg.rfind("--id=", 0) == 0) {
      spec->id = value_of("--id=");
    } else if (arg == "--quiet") {
      spec->quiet = true;
    } else if (arg.rfind("--scenario=", 0) == 0) {
      spec->scenario = value_of("--scenario=");
    } else if (arg.rfind("--trials=", 0) == 0) {
      if (!parse_size_flag("--trials=", &spec->trials)) return false;
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!parse_size_flag("--seed=", &spec->seed)) return false;
      spec->have_seed = true;
    } else if (arg.rfind("--bins=", 0) == 0) {
      if (!parse_size_flag("--bins=", &spec->bins)) return false;
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!parse_size_flag("--threads=", &spec->threads)) return false;
      spec->have_threads = true;
    } else if (arg.rfind("--trial-threads=", 0) == 0) {
      if (!parse_size_flag("--trial-threads=", &spec->trial_threads)) {
        return false;
      }
      spec->have_trial_threads = true;
    } else if (arg.rfind("--point-threads=", 0) == 0) {
      if (!parse_size_flag("--point-threads=", &spec->point_threads)) {
        return false;
      }
      spec->have_point_threads = true;
    } else if (arg == "--set") {
      const char* text = next_value("--set");
      if (text == nullptr) return false;
      const std::string assignment = text;
      const size_t equals = assignment.find('=');
      double value = 0.0;
      if (equals == std::string::npos || equals == 0 ||
          !ParseDouble(assignment.substr(equals + 1), &value)) {
        std::fprintf(stderr, "error: bad --set '%s' (want name=value)\n",
                     text);
        return false;
      }
      spec->set.Set(assignment.substr(0, equals), JsonValue::Number(value));
      spec->have_set = true;
    } else if (arg == "--sweep") {
      const char* text = next_value("--sweep");
      if (text == nullptr) return false;
      const std::string axis = text;
      const size_t equals = axis.find('=');
      if (equals == std::string::npos || equals == 0) {
        std::fprintf(stderr, "error: bad --sweep '%s' (want name=v1,v2)\n",
                     text);
        return false;
      }
      JsonValue values = JsonValue::Array();
      const std::string rest = axis.substr(equals + 1);
      size_t start = 0;
      bool ok = !rest.empty();
      while (ok && start <= rest.size()) {
        size_t comma = rest.find(',', start);
        if (comma == std::string::npos) comma = rest.size();
        double value = 0.0;
        ok = ParseDouble(rest.substr(start, comma - start), &value);
        if (ok) values.Append(JsonValue::Number(value));
        start = comma + 1;
      }
      if (!ok) {
        std::fprintf(stderr, "error: bad --sweep '%s' (want name=v1,v2)\n",
                     text);
        return false;
      }
      spec->sweep.Set(axis.substr(0, equals), std::move(values));
      spec->have_sweep = true;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::string BuildRequest(const ClientSpec& spec) {
  JsonValue request = JsonValue::Object();
  if (!spec.id.empty()) request.Set("id", JsonValue::String(spec.id));
  request.Set("scenario", JsonValue::String(spec.scenario));
  // Flags left at their defaults are omitted — the server's JobSpec
  // defaults match the run_experiment CLI's, field for field.
  if (spec.trials > 0) {
    request.Set("trials", JsonValue::Number(static_cast<double>(spec.trials)));
  }
  if (spec.have_seed) {
    request.Set("seed", JsonValue::Number(static_cast<double>(spec.seed)));
  }
  if (spec.bins > 0) {
    request.Set("bins", JsonValue::Number(static_cast<double>(spec.bins)));
  }
  if (spec.have_threads) {
    request.Set("threads",
                JsonValue::Number(static_cast<double>(spec.threads)));
  }
  if (spec.have_trial_threads) {
    request.Set("trial_threads",
                JsonValue::Number(static_cast<double>(spec.trial_threads)));
  }
  if (spec.have_point_threads) {
    request.Set("point_threads",
                JsonValue::Number(static_cast<double>(spec.point_threads)));
  }
  if (spec.have_set) request.Set("set", spec.set);
  if (spec.have_sweep) request.Set("sweep", spec.sweep);
  return request.Dump();
}

}  // namespace

int main(int argc, char** argv) {
  ClientSpec spec;
  if (!ParseArgs(argc, argv, &spec)) return 2;
  if (!spec.port_file.empty()) {
    std::FILE* file = std::fopen(spec.port_file.c_str(), "r");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot read port file '%s'\n",
                   spec.port_file.c_str());
      return 2;
    }
    unsigned port = 0;
    const int fields = std::fscanf(file, "%u", &port);
    std::fclose(file);
    if (fields != 1 || port == 0 || port > 65535) {
      std::fprintf(stderr, "error: bad port file '%s'\n",
                   spec.port_file.c_str());
      return 2;
    }
    spec.port = port;
  }
  if (spec.port == 0 || spec.port > 65535) {
    std::fprintf(stderr,
                 "usage: experiment_client (--port=P | --port-file=PATH) "
                 "(--scenario=NAME [--trials=N] [--seed=S] [--bins=B] "
                 "[--threads=T] [--trial-threads=T] [--point-threads=P] "
                 "[--set name=value]... [--sweep name=v1,v2,...]... "
                 "[--id=TOKEN] | --request=JSON) [--quiet]\n");
    return 2;
  }
  if (spec.raw_request.empty() && spec.scenario.empty()) {
    std::fprintf(stderr, "error: need --scenario=NAME or --request=JSON\n");
    return 2;
  }

  const std::string request =
      spec.raw_request.empty() ? BuildRequest(spec) : spec.raw_request;
  Client client;
  std::string error;
  if (!client.Connect(static_cast<uint16_t>(spec.port), &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  ClientEvent last;
  const bool ok = client.SubmitAndWait(
      request, &last, &error, [&spec](const ClientEvent& event) {
        if (spec.quiet) return;
        if (event.event == "accepted") {
          std::fprintf(stderr, "accepted id=%s cached=%s queue_depth=%zu\n",
                       event.id.c_str(), event.cached ? "true" : "false",
                       event.queue_depth);
        } else if (event.event == "progress") {
          std::fprintf(stderr, "progress %s %zu: %zu/%zu\n",
                       event.unit.c_str(), event.index, event.completed,
                       event.total);
        }
      });
  if (!ok) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (!spec.quiet) {
    std::fprintf(stderr, "result id=%s cached=%s digest=%016llx\n",
                 last.id.c_str(), last.cached ? "true" : "false",
                 static_cast<unsigned long long>(last.digest));
  }
  std::fwrite(last.payload.data(), 1, last.payload.size(), stdout);
  return 0;
}
