// Ergodicity in closed loops: certificates and their empirical meaning.
//
// Demonstrates the paper's Section VI machinery on three systems:
//   1. an average-contractive iterated function system — certified
//      uniquely ergodic, and Elton time averages agree from any start;
//   2. a periodic Markov chain — invariant measure exists but is not
//      attractive; distributions oscillate forever;
//   3. the ensemble under integral control with hysteresis — the
//      aggregate regulates but per-agent impact depends on the initial
//      condition (Fioravanti et al. 2019), violating equal impact.

#include <cmath>
#include <cstdio>

#include "core/comparison_functions.h"
#include "core/ergodicity.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "markov/affine_ifs.h"
#include "markov/affine_map.h"
#include "markov/markov_chain.h"
#include "rng/random.h"
#include "sim/ensemble_control.h"
#include "stats/time_series.h"

int main() {
  using namespace eqimpact;

  std::printf("1) Average-contractive IFS\n");
  markov::AffineIfs ifs({markov::AffineMap::Scalar(0.4, 0.0),
                         markov::AffineMap::Scalar(0.6, 0.8)},
                        {0.5, 0.5});
  core::ErgodicityCertificate certificate = core::CertifyAffineIfs(ifs);
  std::printf("   certificate: %s\n", certificate.Summary().c_str());
  std::printf("   exact invariant mean: %.4f\n", ifs.InvariantMean()[0]);
  rng::Random random(1);
  for (double x0 : {-10.0, 0.0, 25.0}) {
    double avg = ifs.TimeAverage(
        linalg::Vector{x0}, 100000, 500,
        [](const linalg::Vector& x) { return x[0]; }, &random);
    std::printf("   time average from x0=%+6.1f: %.4f\n", x0, avg);
  }

  std::printf("\n2) Periodic chain: invariant measure without attraction\n");
  markov::MarkovChain flip(linalg::Matrix{{0.0, 1.0}, {1.0, 0.0}});
  std::printf("   certificate: %s\n",
              core::CertifyMarkovChain(flip).Summary().c_str());
  linalg::Vector mu{1.0, 0.0};
  std::printf("   distribution under P^k from [1, 0]:");
  for (int k = 0; k < 4; ++k) {
    std::printf(" %s", mu.ToString().c_str());
    mu = flip.Propagate(mu, 1);
  }
  std::printf("  (oscillates, never converges)\n");

  std::printf("\n3) Integral control with hysteresis vs stable broadcast\n");
  sim::EnsembleOptions options;
  options.num_agents = 6;
  options.steps = 10000;
  options.burn_in = 1000;
  std::vector<bool> start_a{true, true, true, false, false, false};
  std::vector<bool> start_b{false, false, false, true, true, true};
  // The four runs (2 controllers x 2 initial conditions) are independent
  // trials; dispatch them through the parallel runtime in one study.
  std::vector<sim::EnsembleStudySpec> specs;
  for (auto kind : {sim::EnsembleControllerKind::kStableRandomized,
                    sim::EnsembleControllerKind::kIntegralHysteresis}) {
    for (int which = 0; which < 2; ++which) {
      sim::EnsembleStudySpec spec;
      spec.kind = kind;
      spec.initial_on = which == 0 ? start_a : start_b;
      spec.initial_signal = 0.5;
      // Paired design: both controllers share the noise stream of their
      // initial condition, isolating the controller contrast.
      spec.seed_index = which;
      specs.push_back(spec);
    }
  }
  sim::EnsembleStudyOptions study;
  study.ensemble = options;
  study.master_seed = 10;
  std::vector<sim::EnsembleRunResult> runs = RunEnsembleStudy(specs, study);
  for (size_t pair = 0; pair < 2; ++pair) {
    const char* name = pair == 0 ? "stable-randomized" : "integral-hysteresis";
    const sim::EnsembleRunResult& run_a = runs[2 * pair];
    const sim::EnsembleRunResult& run_b = runs[2 * pair + 1];
    double cross_gap = 0.0;
    for (size_t i = 0; i < options.num_agents; ++i) {
      cross_gap = std::max(cross_gap,
                           std::fabs(run_a.per_agent_average[i] -
                                     run_b.per_agent_average[i]));
    }
    std::printf("   %-20s aggregate %.3f/%.3f, per-agent gap across "
                "initial conditions: %.3f -> %s\n",
                name, run_a.aggregate_average, run_b.aggregate_average,
                cross_gap,
                cross_gap < 0.05 ? "uniquely ergodic behaviour"
                                 : "ERGODICITY LOST");
  }

  std::printf("\n4) Incremental ISS certificates for the loop dynamics\n");
  core::LinearIssCertificate stable = core::CertifyLinearIncrementalIss(
      linalg::Matrix{{0.7, 0.1}, {0.0, 0.5}});
  std::printf("   stable filter A (rho=%.2f): incrementally ISS: %s\n",
              stable.spectral_radius,
              stable.incrementally_iss ? "yes" : "no");
  core::LinearIssCertificate integrator =
      core::CertifyLinearIncrementalIss(linalg::Matrix{{1.0}});
  std::printf("   pure integrator (rho=%.2f): incrementally ISS: %s  "
              "<- integral action is the paper's culprit\n",
              integrator.spectral_radius,
              integrator.incrementally_iss ? "yes" : "no");
  return 0;
}
