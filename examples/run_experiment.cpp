// Generic scenario/experiment/sweep CLI over the string-keyed scenario
// registry: one driver for every closed-loop instantiation (credit,
// market, ensemble, and anything registered later), emitting JSON.
//
// Usage:
//   run_experiment --list
//   run_experiment --scenario=NAME [--trials=N] [--seed=S] [--threads=T]
//                  [--trial-threads=T] [--point-threads=P] [--bins=B]
//                  [--shards=N] [--checkpoint=PATH] [--resume]
//                  [--force-scalar]
//                  [--set name=value]... [--sweep name=v1,v2,...]...
//   run_experiment --serve [--port=P] [--port-file=PATH]
//                  [--serve-workers=N] [--serve-queue=N]
//                  [--serve-threads=N] [--serve-cache=N]
//                  [--serve-transport=threads|epoll]
//                  [--serve-max-connections=N] [--serve-idle-timeout=MS]
//   run_experiment --certify [--scenario=NAME] [--cells=N]
//                  [--force-scalar] [--set name=value]...
//
// --certify prints ergodicity certificates instead of running trials:
// each scenario's declared dynamics surrogate (an affine IFS) is
// discretised on a sparse Ulam operator and its invariant measure,
// spectral gap and mixing-time bound are computed with the iterative
// sparse eigensolvers — simulation-free, O(cells) memory. Without
// --scenario it certifies every registered scenario; with it, one
// scenario with the --set assignments applied. --cells sets the Ulam
// resolution (default 4096). Certificates are closed-form properties of
// the spec, so --certify cannot be combined with --sweep, --serve or
// checkpointing, and the output is byte-identical under --force-scalar
// (the provenance line, which also records the certificate solver
// configuration, is the only line that differs).
//
// --serve runs the long-lived experiment service instead of one
// experiment: line-delimited JSON requests over loopback TCP (see
// src/serve/protocol.h), queued scheduling with admission control, a
// digest-keyed result cache, streamed per-trial/per-point progress.
// Served result payloads are rendered by the same code as this CLI's
// stdout (src/serve/render_json), so the two are byte-identical for the
// same spec — CI diffs them. SIGTERM/SIGINT shut the server down
// gracefully: stop accepting, drain every in-flight job, then exit 0.
// --serve-transport selects the socket transport (default epoll: one
// event-loop thread owns every connection with watermark backpressure;
// threads: the original thread-per-connection transport, kept for
// comparison). --serve-max-connections caps concurrent connections
// (typed too_many_connections rejection; 0 = unlimited) and
// --serve-idle-timeout closes connections with no traffic for MS
// milliseconds (0 = never).
//
// --force-scalar pins every vectorized kernel to its scalar reference
// lanes (base::SetSimdForceScalarForTesting) before anything runs: the
// output must be byte-identical to the vector build's — CI diffs the
// two as a smoke test of the kernel layer's bitwise contract (the
// single-line "provenance" field, which records the active backend, is
// the one line the diff filters out).
//
// --shards=N is sugar for --set num_shards=N: shard the within-trial
// population sweep N ways. Sharding regroups execution, never the work
// — the digest is identical at every shard count.
//
// --checkpoint=PATH snapshots experiment progress to PATH after every
// simulated step (atomic write; survives SIGKILL at any instant), and
// --resume restarts from that snapshot if it exists. A resumed run's
// output is byte-identical to an uninterrupted one. Checkpointing is a
// single-experiment feature: combining it with --sweep is an error.
//
// Without --sweep, runs one experiment and prints its aggregates; with
// one or more --sweep axes, fans the Cartesian grid out over
// experiments and prints one JSON row per grid point. --set assigns a
// scenario parameter before the run (and before every sweep point).
// The three thread budgets nest: --point-threads workers run grid
// points concurrently (sweeps only; 0 = all cores, default 1),
// --threads parallelises each experiment's trials, --trial-threads
// each trial's inner passes. Deterministic in the spec at every thread
// configuration; the digests printed here certify it.

#include <csignal>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "base/simd_scalar.h"
#include "serve/render_json.h"
#include "serve/server.h"
#include "sim/certify.h"
#include "sim/experiment.h"
#include "sim/scenario_registry.h"
#include "sim/sweep.h"

namespace {

using eqimpact::sim::ExperimentOptions;
using eqimpact::sim::ExperimentResult;
using eqimpact::sim::Scenario;
using eqimpact::sim::SweepOptions;
using eqimpact::sim::SweepParameter;
using eqimpact::sim::SweepResult;

struct Assignment {
  std::string name;
  double value = 0.0;
};

struct CliSpec {
  bool list = false;
  bool force_scalar = false;
  /// --serve: run the experiment service instead of one experiment.
  bool serve = false;
  size_t serve_port = 0;       ///< 0 = ephemeral.
  std::string port_file;       ///< Write the bound port here (for CI).
  size_t serve_workers = 2;    ///< Concurrent jobs.
  size_t serve_queue = 16;     ///< Bounded admission queue depth.
  size_t serve_threads = 0;    ///< Total thread budget (0 = hardware).
  size_t serve_cache = 64;     ///< Result-cache capacity (entries).
  /// --serve-transport=threads|epoll (epoll is the default: one
  /// event-loop thread owns every connection; threads is the original
  /// thread-per-connection transport).
  std::string serve_transport = "epoll";
  size_t serve_max_connections = 256;  ///< 0 = unlimited.
  size_t serve_idle_timeout_ms = 0;    ///< 0 = no idle timeout.
  std::string scenario;
  ExperimentOptions experiment;
  /// Cross-point workers of a --sweep run (SweepOptions convention:
  /// 1 = sequential, 0 = hardware concurrency).
  size_t point_threads = 1;
  /// --shards=N: sugar for --set num_shards=N (0 = flag absent, keep
  /// the scenario default). Recorded in the provenance field either way.
  size_t shards = 0;
  /// --certify: print ergodicity certificates instead of running.
  bool certify = false;
  /// --cells=N: Ulam resolution of the certificate discretisation.
  size_t certify_cells = 4096;
  std::vector<Assignment> assignments;
  std::vector<SweepParameter> sweeps;
};

bool ParseDouble(const std::string& text, double* value) {
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

/// Strict full-string parse of a non-negative integer flag value;
/// rejects "1e3", "abc", "-2", "", and out-of-range magnitudes rather
/// than silently truncating or clamping.
bool ParseSize(const std::string& text, size_t* value) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  *value = static_cast<size_t>(parsed);
  return true;
}

/// Splits "name=v1,v2,..." into a sweep axis.
bool ParseSweep(const std::string& spec, SweepParameter* parameter) {
  const size_t equals = spec.find('=');
  if (equals == std::string::npos || equals == 0) return false;
  parameter->name = spec.substr(0, equals);
  parameter->values.clear();
  std::string rest = spec.substr(equals + 1);
  size_t start = 0;
  while (start <= rest.size()) {
    size_t comma = rest.find(',', start);
    if (comma == std::string::npos) comma = rest.size();
    double value = 0.0;
    if (!ParseDouble(rest.substr(start, comma - start), &value)) return false;
    parameter->values.push_back(value);
    start = comma + 1;
  }
  return !parameter->values.empty();
}

bool ParseArgs(int argc, char** argv, CliSpec* spec) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    auto parse_size_flag = [&arg, &value_of](const char* prefix,
                                             size_t* value) {
      if (!ParseSize(value_of(prefix), value)) {
        std::fprintf(stderr,
                     "error: bad %s value '%s' (want a non-negative "
                     "integer)\n",
                     prefix, value_of(prefix).c_str());
        return false;
      }
      return true;
    };
    if (arg == "--list") {
      spec->list = true;
    } else if (arg == "--serve") {
      spec->serve = true;
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!parse_size_flag("--port=", &spec->serve_port)) return false;
      if (spec->serve_port > 65535) {
        std::fprintf(stderr, "error: --port must be <= 65535\n");
        return false;
      }
    } else if (arg.rfind("--port-file=", 0) == 0) {
      spec->port_file = value_of("--port-file=");
    } else if (arg.rfind("--serve-workers=", 0) == 0) {
      if (!parse_size_flag("--serve-workers=", &spec->serve_workers)) {
        return false;
      }
    } else if (arg.rfind("--serve-queue=", 0) == 0) {
      if (!parse_size_flag("--serve-queue=", &spec->serve_queue)) {
        return false;
      }
    } else if (arg.rfind("--serve-threads=", 0) == 0) {
      if (!parse_size_flag("--serve-threads=", &spec->serve_threads)) {
        return false;
      }
    } else if (arg.rfind("--serve-cache=", 0) == 0) {
      if (!parse_size_flag("--serve-cache=", &spec->serve_cache)) {
        return false;
      }
    } else if (arg.rfind("--serve-transport=", 0) == 0) {
      spec->serve_transport = value_of("--serve-transport=");
      if (spec->serve_transport != "threads" &&
          spec->serve_transport != "epoll") {
        std::fprintf(stderr,
                     "error: --serve-transport must be 'threads' or "
                     "'epoll', got '%s'\n",
                     spec->serve_transport.c_str());
        return false;
      }
    } else if (arg.rfind("--serve-max-connections=", 0) == 0) {
      if (!parse_size_flag("--serve-max-connections=",
                           &spec->serve_max_connections)) {
        return false;
      }
    } else if (arg.rfind("--serve-idle-timeout=", 0) == 0) {
      if (!parse_size_flag("--serve-idle-timeout=",
                           &spec->serve_idle_timeout_ms)) {
        return false;
      }
    } else if (arg == "--force-scalar") {
      spec->force_scalar = true;
    } else if (arg.rfind("--scenario=", 0) == 0) {
      spec->scenario = value_of("--scenario=");
    } else if (arg.rfind("--trials=", 0) == 0) {
      if (!parse_size_flag("--trials=", &spec->experiment.num_trials)) {
        return false;
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      size_t seed = 0;
      if (!parse_size_flag("--seed=", &seed)) return false;
      spec->experiment.master_seed = static_cast<uint64_t>(seed);
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!parse_size_flag("--threads=", &spec->experiment.num_threads)) {
        return false;
      }
    } else if (arg.rfind("--trial-threads=", 0) == 0) {
      if (!parse_size_flag("--trial-threads=",
                           &spec->experiment.trial_threads)) {
        return false;
      }
    } else if (arg.rfind("--point-threads=", 0) == 0) {
      if (!parse_size_flag("--point-threads=", &spec->point_threads)) {
        return false;
      }
    } else if (arg.rfind("--bins=", 0) == 0) {
      if (!parse_size_flag("--bins=", &spec->experiment.impact_bins)) {
        return false;
      }
    } else if (arg.rfind("--shards=", 0) == 0) {
      if (!parse_size_flag("--shards=", &spec->shards)) return false;
      if (spec->shards == 0) {
        std::fprintf(stderr, "error: --shards must be positive\n");
        return false;
      }
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      spec->experiment.checkpoint_path = value_of("--checkpoint=");
      if (spec->experiment.checkpoint_path.empty()) {
        std::fprintf(stderr, "error: --checkpoint needs a path\n");
        return false;
      }
    } else if (arg == "--resume") {
      spec->experiment.resume = true;
    } else if (arg == "--certify") {
      spec->certify = true;
    } else if (arg.rfind("--cells=", 0) == 0) {
      if (!parse_size_flag("--cells=", &spec->certify_cells)) return false;
      if (spec->certify_cells == 0) {
        std::fprintf(stderr, "error: --cells must be positive\n");
        return false;
      }
    } else if (arg == "--set") {
      const char* text = next_value("--set");
      if (text == nullptr) return false;
      std::string assignment = text;
      const size_t equals = assignment.find('=');
      Assignment parsed;
      if (equals == std::string::npos || equals == 0 ||
          !ParseDouble(assignment.substr(equals + 1), &parsed.value)) {
        std::fprintf(stderr, "error: bad --set '%s' (want name=value)\n",
                     text);
        return false;
      }
      parsed.name = assignment.substr(0, equals);
      spec->assignments.push_back(parsed);
    } else if (arg == "--sweep") {
      const char* text = next_value("--sweep");
      if (text == nullptr) return false;
      SweepParameter parameter;
      if (!ParseSweep(text, &parameter)) {
        std::fprintf(stderr, "error: bad --sweep '%s' (want name=v1,v2)\n",
                     text);
        return false;
      }
      spec->sweeps.push_back(std::move(parameter));
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void PrintStringArray(const std::vector<std::string>& values) {
  std::printf("[");
  for (size_t i = 0; i < values.size(); ++i) {
    std::printf("\"%s\"%s", values[i].c_str(),
                i + 1 < values.size() ? ", " : "");
  }
  std::printf("]");
}

/// The run-identification header of the output document (requested
/// knobs + one-line provenance), shared verbatim with the experiment
/// service's payload renderer — serve/render_json.h documents why the
/// two must stay byte-identical.
eqimpact::serve::RenderHeader HeaderOf(const CliSpec& spec) {
  eqimpact::serve::RenderHeader header;
  header.num_trials = spec.experiment.num_trials;
  header.master_seed = spec.experiment.master_seed;
  header.num_threads = spec.experiment.num_threads;
  header.trial_threads = spec.experiment.trial_threads;
  header.point_threads = spec.point_threads;
  header.provenance_json = eqimpact::serve::RenderProvenance(
      spec.force_scalar, spec.shards, spec.experiment.checkpoint_path,
      spec.experiment.resume, /*extra_json=*/"");
  return header;
}

int RunSingle(Scenario* scenario, const CliSpec& spec) {
  ExperimentResult result =
      eqimpact::sim::RunExperiment(scenario, spec.experiment);
  const std::string document =
      eqimpact::serve::RenderExperimentJson(result, HeaderOf(spec));
  std::fwrite(document.data(), 1, document.size(), stdout);
  return 0;
}

int RunGrid(const CliSpec& spec) {
  eqimpact::sim::ScenarioFactory base_factory =
      eqimpact::sim::GetScenarioFactory(spec.scenario);
  // Every grid point starts from a fresh scenario with the --set
  // assignments applied, then the point's sweep values on top.
  auto factory = [&spec, &base_factory]() -> std::unique_ptr<Scenario> {
    std::unique_ptr<Scenario> scenario = base_factory();
    for (const Assignment& assignment : spec.assignments) {
      if (!scenario->SetParameter(assignment.name, assignment.value)) {
        std::fprintf(stderr, "error: scenario '%s' rejects parameter '%s' "
                     "(unknown name or out-of-range value)\n",
                     spec.scenario.c_str(), assignment.name.c_str());
        std::exit(2);
      }
    }
    return scenario;
  };
  // Validate every sweep value on a probe instance up front, so a
  // mistyped --sweep name or an out-of-range grid value gets the same
  // graceful diagnostic as --set instead of a mid-sweep abort.
  {
    std::unique_ptr<Scenario> probe = factory();
    for (const SweepParameter& parameter : spec.sweeps) {
      for (double value : parameter.values) {
        if (!probe->SetParameter(parameter.name, value)) {
          std::fprintf(stderr,
                       "error: scenario '%s' rejects parameter '%s' = %g "
                       "(unknown name or out-of-range value)\n",
                       spec.scenario.c_str(), parameter.name.c_str(), value);
          return 2;
        }
      }
    }
  }
  SweepOptions options;
  options.experiment = spec.experiment;
  options.parameters = spec.sweeps;
  options.num_point_threads = spec.point_threads;
  SweepResult result = eqimpact::sim::RunSweep(factory, options);
  const std::string document =
      eqimpact::serve::RenderSweepJson(result, HeaderOf(spec));
  std::fwrite(document.data(), 1, document.size(), stdout);
  return 0;
}

// --- --certify mode ---------------------------------------------------

int RunCertify(const CliSpec& spec) {
  eqimpact::sim::ScenarioCertifyOptions options;
  options.spectral.num_cells = spec.certify_cells;
  // The provenance line carries the certificate solver configuration, so
  // a stored document is self-describing about how its numbers arose.
  char extra[192];
  std::snprintf(extra, sizeof(extra),
                "\"certify\": {\"num_cells\": %zu, \"epsilon\": %g, "
                "\"max_iterations\": %d, \"arnoldi_subspace\": %zu}",
                options.spectral.num_cells, options.spectral.epsilon,
                options.spectral.max_iterations,
                options.spectral.arnoldi_subspace);
  const std::string provenance = eqimpact::serve::RenderProvenance(
      spec.force_scalar, /*num_shards=*/0, /*checkpoint_path=*/"",
      /*resume=*/false, extra);

  std::vector<eqimpact::sim::ScenarioCertificate> certificates;
  if (spec.scenario.empty()) {
    certificates = eqimpact::sim::CertifyRegisteredScenarios(options);
  } else {
    std::unique_ptr<Scenario> scenario =
        eqimpact::sim::CreateScenario(spec.scenario);
    if (scenario == nullptr) {
      std::fprintf(stderr, "error: unknown scenario '%s' (try --list)\n",
                   spec.scenario.c_str());
      return 2;
    }
    for (const Assignment& assignment : spec.assignments) {
      if (!scenario->SetParameter(assignment.name, assignment.value)) {
        std::fprintf(stderr,
                     "error: scenario '%s' rejects parameter '%s' "
                     "(unknown name or out-of-range value)\n",
                     spec.scenario.c_str(), assignment.name.c_str());
        return 2;
      }
    }
    certificates.push_back(
        eqimpact::sim::CertifyScenario(*scenario, options));
  }
  const std::string document = eqimpact::sim::RenderScenarioCertificatesJson(
      certificates, provenance, options);
  std::fwrite(document.data(), 1, document.size(), stdout);
  return 0;
}

// --- --serve mode -----------------------------------------------------

/// SIGTERM/SIGINT land here: the handler only pokes a self-pipe (the
/// sole async-signal-safe option); the main thread blocks on the read
/// end and runs the actual graceful shutdown.
int g_shutdown_pipe[2] = {-1, -1};

void HandleShutdownSignal(int /*signum*/) {
  const char byte = 1;
  // The pipe is wide enough for every signal that can arrive; a failed
  // write (full pipe) still means a byte is already in flight.
  (void)!write(g_shutdown_pipe[1], &byte, 1);
}

int RunServer(const CliSpec& spec) {
  if (spec.serve_workers == 0) {
    std::fprintf(stderr, "error: --serve-workers must be positive\n");
    return 2;
  }
  if (pipe(g_shutdown_pipe) != 0) {
    std::perror("serve: pipe");
    return 1;
  }
  eqimpact::serve::ServerOptions options;
  options.port = static_cast<uint16_t>(spec.serve_port);
  options.service.scheduler.num_workers = spec.serve_workers;
  options.service.scheduler.queue_capacity = spec.serve_queue;
  options.service.scheduler.total_threads = spec.serve_threads;
  options.service.cache_capacity = spec.serve_cache;
  options.transport = spec.serve_transport == "threads"
                          ? eqimpact::serve::ServerTransport::kThreads
                          : eqimpact::serve::ServerTransport::kEpoll;
  options.limits.max_connections = spec.serve_max_connections;
  options.limits.idle_timeout_ms =
      static_cast<int64_t>(spec.serve_idle_timeout_ms);
  eqimpact::serve::Server server(options);
  if (!server.Start()) return 1;

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleShutdownSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  if (!spec.port_file.empty()) {
    std::FILE* file = std::fopen(spec.port_file.c_str(), "w");
    if (file == nullptr) {
      std::perror("serve: port file");
      return 1;
    }
    std::fprintf(file, "%u\n", server.port());
    std::fclose(file);
  }
  std::fprintf(stderr,
               "serving on 127.0.0.1:%u (transport=%s workers=%zu "
               "queue=%zu job_threads=%zu cache=%zu)\n",
               server.port(), spec.serve_transport.c_str(),
               spec.serve_workers, spec.serve_queue,
               server.service().scheduler().job_threads(),
               spec.serve_cache);

  char byte = 0;
  while (read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "serve: shutdown signal, draining %zu job(s)\n",
               server.service().scheduler().in_flight());
  server.Shutdown();
  const eqimpact::serve::ExperimentService& service = server.service();
  std::fprintf(stderr,
               "serve: drained; runs=%zu cache_hits=%zu dedup_joins=%zu "
               "rejected=%zu\n",
               service.runs_started(), service.cache_hits(),
               service.dedup_joins(), service.rejected_queue_full());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliSpec spec;
  if (!ParseArgs(argc, argv, &spec)) return 2;
  // Before any kernel can run, so every dispatch in the process sees it.
  if (spec.force_scalar) eqimpact::base::SetSimdForceScalarForTesting(true);

  if (spec.list) {
    std::printf("{\n  \"scenarios\": [\n");
    const std::vector<std::string> names =
        eqimpact::sim::RegisteredScenarioNames();
    for (size_t i = 0; i < names.size(); ++i) {
      std::unique_ptr<Scenario> scenario =
          eqimpact::sim::CreateScenario(names[i]);
      std::printf("    {\"name\": \"%s\", \"groups\": ", names[i].c_str());
      PrintStringArray(scenario->GroupLabels());
      std::printf(", \"parameters\": ");
      PrintStringArray(scenario->ParameterNames());
      std::printf("}%s\n", i + 1 < names.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }

  if (spec.certify) {
    if (spec.serve || !spec.sweeps.empty()) {
      std::fprintf(stderr,
                   "error: --certify computes closed-form certificates; it "
                   "cannot be combined with --sweep or --serve\n");
      return 2;
    }
    if (!spec.experiment.checkpoint_path.empty() || spec.experiment.resume) {
      std::fprintf(stderr,
                   "error: --certify runs no trials; --checkpoint/--resume "
                   "do not apply\n");
      return 2;
    }
    if (spec.scenario.empty() &&
        (!spec.assignments.empty() || spec.shards > 0)) {
      std::fprintf(stderr,
                   "error: --set/--shards with --certify need "
                   "--scenario=NAME (certifying all scenarios takes their "
                   "defaults)\n");
      return 2;
    }
    return RunCertify(spec);
  }

  if (spec.serve) {
    if (!spec.scenario.empty() || !spec.sweeps.empty()) {
      std::fprintf(stderr,
                   "error: --serve takes job specs over the wire, not "
                   "--scenario/--sweep flags\n");
      return 2;
    }
    return RunServer(spec);
  }

  if (spec.scenario.empty()) {
    std::fprintf(stderr,
                 "usage: run_experiment --list | --scenario=NAME "
                 "[--trials=N] [--seed=S] [--threads=T] [--trial-threads=T] "
                 "[--point-threads=P] [--bins=B] [--shards=N] "
                 "[--checkpoint=PATH] [--resume] [--force-scalar] "
                 "[--set name=value]... [--sweep name=v1,v2,...]... | "
                 "--serve [--port=P] [--port-file=PATH] [--serve-workers=N] "
                 "[--serve-queue=N] [--serve-threads=N] [--serve-cache=N] | "
                 "--certify [--scenario=NAME] [--cells=N]\n");
    return 2;
  }
  if (spec.experiment.num_trials == 0 || spec.experiment.impact_bins == 0) {
    std::fprintf(stderr, "error: --trials and --bins must be positive\n");
    return 2;
  }
  if (!spec.experiment.checkpoint_path.empty() && !spec.sweeps.empty()) {
    std::fprintf(stderr,
                 "error: --checkpoint tracks a single experiment; it cannot "
                 "be combined with --sweep\n");
    return 2;
  }
  if (spec.experiment.resume && spec.experiment.checkpoint_path.empty()) {
    std::fprintf(stderr, "error: --resume needs --checkpoint=PATH\n");
    return 2;
  }
  // --shards is flag sugar for the scenario parameter of the same
  // meaning; route it through SetParameter so a scenario without
  // sharding rejects it with the standard diagnostic.
  if (spec.shards > 0) {
    spec.assignments.push_back(
        {"num_shards", static_cast<double>(spec.shards)});
  }
  std::unique_ptr<Scenario> scenario =
      eqimpact::sim::CreateScenario(spec.scenario);
  if (scenario == nullptr) {
    std::fprintf(stderr, "error: unknown scenario '%s' (try --list)\n",
                 spec.scenario.c_str());
    return 2;
  }
  for (const Assignment& assignment : spec.assignments) {
    if (!scenario->SetParameter(assignment.name, assignment.value)) {
      std::fprintf(stderr, "error: scenario '%s' rejects parameter '%s' "
                     "(unknown name or out-of-range value)\n",
                   spec.scenario.c_str(), assignment.name.c_str());
      return 2;
    }
  }
  if (spec.sweeps.empty()) return RunSingle(scenario.get(), spec);
  return RunGrid(spec);
}
