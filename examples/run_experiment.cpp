// Generic scenario/experiment/sweep CLI over the string-keyed scenario
// registry: one driver for every closed-loop instantiation (credit,
// market, ensemble, and anything registered later), emitting JSON.
//
// Usage:
//   run_experiment --list
//   run_experiment --scenario=NAME [--trials=N] [--seed=S] [--threads=T]
//                  [--trial-threads=T] [--point-threads=P] [--bins=B]
//                  [--shards=N] [--checkpoint=PATH] [--resume]
//                  [--force-scalar]
//                  [--set name=value]... [--sweep name=v1,v2,...]...
//
// --force-scalar pins every vectorized kernel to its scalar reference
// lanes (base::SetSimdForceScalarForTesting) before anything runs: the
// output must be byte-identical to the vector build's — CI diffs the
// two as a smoke test of the kernel layer's bitwise contract (the
// single-line "provenance" field, which records the active backend, is
// the one line the diff filters out).
//
// --shards=N is sugar for --set num_shards=N: shard the within-trial
// population sweep N ways. Sharding regroups execution, never the work
// — the digest is identical at every shard count.
//
// --checkpoint=PATH snapshots experiment progress to PATH after every
// simulated step (atomic write; survives SIGKILL at any instant), and
// --resume restarts from that snapshot if it exists. A resumed run's
// output is byte-identical to an uninterrupted one. Checkpointing is a
// single-experiment feature: combining it with --sweep is an error.
//
// Without --sweep, runs one experiment and prints its aggregates; with
// one or more --sweep axes, fans the Cartesian grid out over
// experiments and prints one JSON row per grid point. --set assigns a
// scenario parameter before the run (and before every sweep point).
// The three thread budgets nest: --point-threads workers run grid
// points concurrently (sweeps only; 0 = all cores, default 1),
// --threads parallelises each experiment's trials, --trial-threads
// each trial's inner passes. Deterministic in the spec at every thread
// configuration; the digests printed here certify it.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <thread>

#include "base/simd_scalar.h"
#include "runtime/simd.h"
#include "sim/experiment.h"
#include "sim/scenario_registry.h"
#include "sim/sweep.h"

namespace {

using eqimpact::sim::ExperimentOptions;
using eqimpact::sim::ExperimentResult;
using eqimpact::sim::Scenario;
using eqimpact::sim::SweepOptions;
using eqimpact::sim::SweepParameter;
using eqimpact::sim::SweepResult;

struct Assignment {
  std::string name;
  double value = 0.0;
};

struct CliSpec {
  bool list = false;
  bool force_scalar = false;
  std::string scenario;
  ExperimentOptions experiment;
  /// Cross-point workers of a --sweep run (SweepOptions convention:
  /// 1 = sequential, 0 = hardware concurrency).
  size_t point_threads = 1;
  /// --shards=N: sugar for --set num_shards=N (0 = flag absent, keep
  /// the scenario default). Recorded in the provenance field either way.
  size_t shards = 0;
  std::vector<Assignment> assignments;
  std::vector<SweepParameter> sweeps;
};

bool ParseDouble(const std::string& text, double* value) {
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

/// Strict full-string parse of a non-negative integer flag value;
/// rejects "1e3", "abc", "-2", "", and out-of-range magnitudes rather
/// than silently truncating or clamping.
bool ParseSize(const std::string& text, size_t* value) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  *value = static_cast<size_t>(parsed);
  return true;
}

/// Splits "name=v1,v2,..." into a sweep axis.
bool ParseSweep(const std::string& spec, SweepParameter* parameter) {
  const size_t equals = spec.find('=');
  if (equals == std::string::npos || equals == 0) return false;
  parameter->name = spec.substr(0, equals);
  parameter->values.clear();
  std::string rest = spec.substr(equals + 1);
  size_t start = 0;
  while (start <= rest.size()) {
    size_t comma = rest.find(',', start);
    if (comma == std::string::npos) comma = rest.size();
    double value = 0.0;
    if (!ParseDouble(rest.substr(start, comma - start), &value)) return false;
    parameter->values.push_back(value);
    start = comma + 1;
  }
  return !parameter->values.empty();
}

bool ParseArgs(int argc, char** argv, CliSpec* spec) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    auto parse_size_flag = [&arg, &value_of](const char* prefix,
                                             size_t* value) {
      if (!ParseSize(value_of(prefix), value)) {
        std::fprintf(stderr,
                     "error: bad %s value '%s' (want a non-negative "
                     "integer)\n",
                     prefix, value_of(prefix).c_str());
        return false;
      }
      return true;
    };
    if (arg == "--list") {
      spec->list = true;
    } else if (arg == "--force-scalar") {
      spec->force_scalar = true;
    } else if (arg.rfind("--scenario=", 0) == 0) {
      spec->scenario = value_of("--scenario=");
    } else if (arg.rfind("--trials=", 0) == 0) {
      if (!parse_size_flag("--trials=", &spec->experiment.num_trials)) {
        return false;
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      size_t seed = 0;
      if (!parse_size_flag("--seed=", &seed)) return false;
      spec->experiment.master_seed = static_cast<uint64_t>(seed);
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!parse_size_flag("--threads=", &spec->experiment.num_threads)) {
        return false;
      }
    } else if (arg.rfind("--trial-threads=", 0) == 0) {
      if (!parse_size_flag("--trial-threads=",
                           &spec->experiment.trial_threads)) {
        return false;
      }
    } else if (arg.rfind("--point-threads=", 0) == 0) {
      if (!parse_size_flag("--point-threads=", &spec->point_threads)) {
        return false;
      }
    } else if (arg.rfind("--bins=", 0) == 0) {
      if (!parse_size_flag("--bins=", &spec->experiment.impact_bins)) {
        return false;
      }
    } else if (arg.rfind("--shards=", 0) == 0) {
      if (!parse_size_flag("--shards=", &spec->shards)) return false;
      if (spec->shards == 0) {
        std::fprintf(stderr, "error: --shards must be positive\n");
        return false;
      }
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      spec->experiment.checkpoint_path = value_of("--checkpoint=");
      if (spec->experiment.checkpoint_path.empty()) {
        std::fprintf(stderr, "error: --checkpoint needs a path\n");
        return false;
      }
    } else if (arg == "--resume") {
      spec->experiment.resume = true;
    } else if (arg == "--set") {
      const char* text = next_value("--set");
      if (text == nullptr) return false;
      std::string assignment = text;
      const size_t equals = assignment.find('=');
      Assignment parsed;
      if (equals == std::string::npos || equals == 0 ||
          !ParseDouble(assignment.substr(equals + 1), &parsed.value)) {
        std::fprintf(stderr, "error: bad --set '%s' (want name=value)\n",
                     text);
        return false;
      }
      parsed.name = assignment.substr(0, equals);
      spec->assignments.push_back(parsed);
    } else if (arg == "--sweep") {
      const char* text = next_value("--sweep");
      if (text == nullptr) return false;
      SweepParameter parameter;
      if (!ParseSweep(text, &parameter)) {
        std::fprintf(stderr, "error: bad --sweep '%s' (want name=v1,v2)\n",
                     text);
        return false;
      }
      spec->sweeps.push_back(std::move(parameter));
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void PrintStringArray(const std::vector<std::string>& values) {
  std::printf("[");
  for (size_t i = 0; i < values.size(); ++i) {
    std::printf("\"%s\"%s", values[i].c_str(),
                i + 1 < values.size() ? ", " : "");
  }
  std::printf("]");
}

/// Execution-environment record: everything about *how* the run
/// executed that, by the determinism contract, must NOT move output
/// bits (machine width, kernel backend, shard/checkpoint config).
/// Printed as exactly one line so CI's scalar-vs-vector byte diff can
/// drop it with a line filter — it is the only part of the output
/// allowed to differ between those runs.
void PrintProvenance(const CliSpec& spec, const char* indent) {
  const eqimpact::runtime::simd::Backend backend =
      eqimpact::runtime::simd::ActiveBackend();
  std::printf(
      "%s\"provenance\": {\"hardware_concurrency\": %u, "
      "\"simd_backend\": \"%s\", \"force_scalar\": %s, "
      "\"num_shards\": %zu, \"checkpoint_path\": \"%s\", "
      "\"resume\": %s}",
      indent, std::thread::hardware_concurrency(),
      eqimpact::runtime::simd::BackendName(backend),
      spec.force_scalar ? "true" : "false", spec.shards,
      spec.experiment.checkpoint_path.c_str(),
      spec.experiment.resume ? "true" : "false");
}

void PrintSummary(const eqimpact::sim::EqualImpactSummary& summary,
                  const char* indent) {
  std::printf("%s\"group_gap\": %.9g,\n", indent, summary.group_gap);
  std::printf("%s\"pooled_std\": %.9g,\n", indent, summary.pooled_std);
  std::printf("%s\"pooled_mean\": %.9g", indent, summary.pooled_mean);
}

int RunSingle(Scenario* scenario, const CliSpec& spec) {
  ExperimentResult result =
      eqimpact::sim::RunExperiment(scenario, spec.experiment);
  std::printf("{\n");
  std::printf("  \"scenario\": \"%s\",\n", result.scenario.c_str());
  std::printf("  \"num_trials\": %zu,\n", spec.experiment.num_trials);
  std::printf("  \"master_seed\": %llu,\n",
              static_cast<unsigned long long>(spec.experiment.master_seed));
  std::printf("  \"num_threads\": %zu,\n", spec.experiment.num_threads);
  std::printf("  \"trial_threads\": %zu,\n", spec.experiment.trial_threads);
  PrintProvenance(spec, "  ");
  std::printf(",\n");
  std::printf("  \"group_labels\": ");
  PrintStringArray(result.group_labels);
  std::printf(",\n");
  std::printf("  \"num_steps\": %zu,\n", result.step_labels.size());
  std::printf("  \"final_group_mean\": [");
  const size_t last = result.step_labels.size() - 1;
  for (size_t g = 0; g < result.group_envelopes.size(); ++g) {
    std::printf("%.9g%s", result.group_envelopes[g].mean[last],
                g + 1 < result.group_envelopes.size() ? ", " : "");
  }
  std::printf("],\n");
  std::printf("  \"metrics\": {\n");
  for (size_t m = 0; m < result.metric_names.size(); ++m) {
    std::printf("    \"%s\": {\"mean\": %.9g, \"std\": %.9g}%s\n",
                result.metric_names[m].c_str(),
                result.metric_stats[m].Mean(),
                result.metric_stats[m].StdDev(),
                m + 1 < result.metric_names.size() ? "," : "");
  }
  std::printf("  },\n");
  std::printf("  \"summary\": {\n");
  PrintSummary(result.summary, "    ");
  std::printf("\n  },\n");
  std::printf("  \"digest\": \"%016llx\"\n",
              static_cast<unsigned long long>(
                  eqimpact::sim::ExperimentDigest(result)));
  std::printf("}\n");
  return 0;
}

int RunGrid(const CliSpec& spec) {
  eqimpact::sim::ScenarioFactory base_factory =
      eqimpact::sim::GetScenarioFactory(spec.scenario);
  // Every grid point starts from a fresh scenario with the --set
  // assignments applied, then the point's sweep values on top.
  auto factory = [&spec, &base_factory]() -> std::unique_ptr<Scenario> {
    std::unique_ptr<Scenario> scenario = base_factory();
    for (const Assignment& assignment : spec.assignments) {
      if (!scenario->SetParameter(assignment.name, assignment.value)) {
        std::fprintf(stderr, "error: scenario '%s' rejects parameter '%s' "
                     "(unknown name or out-of-range value)\n",
                     spec.scenario.c_str(), assignment.name.c_str());
        std::exit(2);
      }
    }
    return scenario;
  };
  // Validate every sweep value on a probe instance up front, so a
  // mistyped --sweep name or an out-of-range grid value gets the same
  // graceful diagnostic as --set instead of a mid-sweep abort.
  {
    std::unique_ptr<Scenario> probe = factory();
    for (const SweepParameter& parameter : spec.sweeps) {
      for (double value : parameter.values) {
        if (!probe->SetParameter(parameter.name, value)) {
          std::fprintf(stderr,
                       "error: scenario '%s' rejects parameter '%s' = %g "
                       "(unknown name or out-of-range value)\n",
                       spec.scenario.c_str(), parameter.name.c_str(), value);
          return 2;
        }
      }
    }
  }
  SweepOptions options;
  options.experiment = spec.experiment;
  options.parameters = spec.sweeps;
  options.num_point_threads = spec.point_threads;
  SweepResult result = eqimpact::sim::RunSweep(factory, options);

  std::printf("{\n");
  std::printf("  \"scenario\": \"%s\",\n", result.scenario.c_str());
  std::printf("  \"num_threads\": %zu,\n", spec.experiment.num_threads);
  std::printf("  \"trial_threads\": %zu,\n", spec.experiment.trial_threads);
  std::printf("  \"point_threads\": %zu,\n", spec.point_threads);
  PrintProvenance(spec, "  ");
  std::printf(",\n");
  std::printf("  \"parameters\": ");
  PrintStringArray(result.parameter_names);
  std::printf(",\n");
  std::printf("  \"metric_names\": ");
  PrintStringArray(result.metric_names);
  std::printf(",\n");
  std::printf("  \"points\": [\n");
  for (size_t p = 0; p < result.points.size(); ++p) {
    const eqimpact::sim::SweepPoint& point = result.points[p];
    std::printf("    {\"values\": [");
    for (size_t v = 0; v < point.values.size(); ++v) {
      std::printf("%.9g%s", point.values[v],
                  v + 1 < point.values.size() ? ", " : "");
    }
    std::printf("], \"metric_means\": [");
    for (size_t m = 0; m < point.metric_means.size(); ++m) {
      std::printf("%.9g%s", point.metric_means[m],
                  m + 1 < point.metric_means.size() ? ", " : "");
    }
    std::printf("],\n");
    PrintSummary(point.summary, "     ");
    std::printf(",\n     \"digest\": \"%016llx\"}%s\n",
                static_cast<unsigned long long>(point.digest),
                p + 1 < result.points.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"sweep_digest\": \"%016llx\"\n",
              static_cast<unsigned long long>(
                  eqimpact::sim::SweepDigest(result)));
  std::printf("}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliSpec spec;
  if (!ParseArgs(argc, argv, &spec)) return 2;
  // Before any kernel can run, so every dispatch in the process sees it.
  if (spec.force_scalar) eqimpact::base::SetSimdForceScalarForTesting(true);

  if (spec.list) {
    std::printf("{\n  \"scenarios\": [\n");
    const std::vector<std::string> names =
        eqimpact::sim::RegisteredScenarioNames();
    for (size_t i = 0; i < names.size(); ++i) {
      std::unique_ptr<Scenario> scenario =
          eqimpact::sim::CreateScenario(names[i]);
      std::printf("    {\"name\": \"%s\", \"groups\": ", names[i].c_str());
      PrintStringArray(scenario->GroupLabels());
      std::printf(", \"parameters\": ");
      PrintStringArray(scenario->ParameterNames());
      std::printf("}%s\n", i + 1 < names.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }

  if (spec.scenario.empty()) {
    std::fprintf(stderr,
                 "usage: run_experiment --list | --scenario=NAME "
                 "[--trials=N] [--seed=S] [--threads=T] [--trial-threads=T] "
                 "[--point-threads=P] [--bins=B] [--shards=N] "
                 "[--checkpoint=PATH] [--resume] [--force-scalar] "
                 "[--set name=value]... [--sweep name=v1,v2,...]...\n");
    return 2;
  }
  if (spec.experiment.num_trials == 0 || spec.experiment.impact_bins == 0) {
    std::fprintf(stderr, "error: --trials and --bins must be positive\n");
    return 2;
  }
  if (!spec.experiment.checkpoint_path.empty() && !spec.sweeps.empty()) {
    std::fprintf(stderr,
                 "error: --checkpoint tracks a single experiment; it cannot "
                 "be combined with --sweep\n");
    return 2;
  }
  if (spec.experiment.resume && spec.experiment.checkpoint_path.empty()) {
    std::fprintf(stderr, "error: --resume needs --checkpoint=PATH\n");
    return 2;
  }
  // --shards is flag sugar for the scenario parameter of the same
  // meaning; route it through SetParameter so a scenario without
  // sharding rejects it with the standard diagnostic.
  if (spec.shards > 0) {
    spec.assignments.push_back(
        {"num_shards", static_cast<double>(spec.shards)});
  }
  std::unique_ptr<Scenario> scenario =
      eqimpact::sim::CreateScenario(spec.scenario);
  if (scenario == nullptr) {
    std::fprintf(stderr, "error: unknown scenario '%s' (try --list)\n",
                 spec.scenario.c_str());
    return 2;
  }
  for (const Assignment& assignment : spec.assignments) {
    if (!scenario->SetParameter(assignment.name, assignment.value)) {
      std::fprintf(stderr, "error: scenario '%s' rejects parameter '%s' "
                     "(unknown name or out-of-range value)\n",
                   spec.scenario.c_str(), assignment.name.c_str());
      return 2;
    }
  }
  if (spec.sweeps.empty()) return RunSingle(scenario.get(), spec);
  return RunGrid(spec);
}
