// The introduction's conflict, quantified: equal treatment vs equal
// impact across four lending policies on the same census population.
//
//   flat-limit            the "most equal treatment possible": $50K for
//                         anyone who has never defaulted. Low-income
//                         households default, get locked out forever, and
//                         their impact diverges from everyone else's.
//   income-multiple       3x salary for everyone: differentiated
//                         treatment, but loans people can mostly carry.
//   scorecard (static)    the paper's Table I card, never retrained.
//   affordability-capped  equal impact by design: each loan sized so the
//                         repayment probability hits a common target —
//                         the paper's future-work "constraints on the
//                         equality of impact".
//
// For each policy we run the same 12-year loop and report, per income
// class (the non-protected attribute) and per race (the protected one):
// long-run average default rate and the long-run approval rate.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "credit/adr_filter.h"
#include "credit/income_model.h"
#include "credit/lending_policy.h"
#include "credit/population.h"
#include "credit/race.h"
#include "credit/repayment_model.h"
#include "ml/scorecard.h"
#include "rng/random.h"
#include "sim/text_table.h"
#include "stats/time_series.h"

namespace {

using namespace eqimpact;

struct PolicyOutcome {
  std::string name;
  double adr_low_income = 0.0;   // Pooled default rate on loans granted
                                 // while the applicant's income was <$15K.
  double adr_high_income = 0.0;  // Same, income >= $15K at decision time.
  double approval_low = 0.0;     // Approval rate of <$15K applications.
  double approval_high = 0.0;    // Approval rate of >=$15K applications.
  std::vector<double> race_adr;  // Long-run ADR per race.
};

PolicyOutcome RunPolicy(const credit::LendingPolicy& policy,
                        const credit::RepaymentModel& repayment,
                        uint64_t seed) {
  const size_t kUsers = 2000;
  const int kYears = 12;
  rng::Random race_rng(rng::DeriveSeed(seed, 0));
  rng::Random income_rng(rng::DeriveSeed(seed, 1));
  rng::Random repay_rng(rng::DeriveSeed(seed, 2));

  credit::IncomeModel income_model;
  credit::Population population(kUsers, &race_rng);
  credit::AdrFilter filter(population.races());
  std::vector<bool> ever_defaulted(kUsers, false);
  // Incomes are resampled yearly (the paper's protocol), so class
  // statistics are pooled per decision: the class is the income code at
  // the time of the application.
  double applications[2] = {0.0, 0.0};
  double approvals[2] = {0.0, 0.0};
  double defaults[2] = {0.0, 0.0};

  for (int year = 0; year < kYears; ++year) {
    population.ResampleIncomes(2002 + year, income_model, &income_rng);
    for (size_t i = 0; i < kUsers; ++i) {
      double income = population.income(i);
      double code = population.IncomeCode(i, 15.0);
      credit::Applicant applicant{income, code, filter.UserAdr(i),
                                  ever_defaulted[i]};
      credit::LendingDecision decision = policy.Decide(applicant);
      bool repaid = repayment.SimulateRepaymentForAmount(
          income, decision.mortgage_amount, decision.approved, &repay_rng);
      filter.Update(i, decision.approved, repaid);
      size_t cls = code == 0.0 ? 0 : 1;
      applications[cls] += 1.0;
      if (decision.approved) {
        approvals[cls] += 1.0;
        if (!repaid) {
          defaults[cls] += 1.0;
          ever_defaulted[i] = true;
        }
      }
    }
  }

  PolicyOutcome outcome;
  outcome.name = policy.name();
  outcome.adr_low_income =
      approvals[0] > 0 ? defaults[0] / approvals[0] : 0.0;
  outcome.adr_high_income =
      approvals[1] > 0 ? defaults[1] / approvals[1] : 0.0;
  outcome.approval_low =
      applications[0] > 0 ? approvals[0] / applications[0] : 0.0;
  outcome.approval_high =
      applications[1] > 0 ? approvals[1] / applications[1] : 0.0;
  for (size_t r = 0; r < credit::kNumRaces; ++r) {
    outcome.race_adr.push_back(
        filter.RaceAdr(static_cast<credit::Race>(r)));
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf("Equal treatment vs equal impact across lending policies\n");
  std::printf("========================================================\n\n");

  credit::RepaymentModel repayment;
  ml::Scorecard table_one(
      {{"History", "x ADR", -8.17}, {"Income", "> $15K", 5.77}}, 0.4);

  std::vector<std::unique_ptr<credit::LendingPolicy>> policies;
  policies.push_back(std::make_unique<credit::FlatLimitPolicy>(50.0));
  policies.push_back(std::make_unique<credit::IncomeMultiplePolicy>(3.0));
  policies.push_back(
      std::make_unique<credit::ScorecardPolicy>(table_one, 3.5));
  policies.push_back(std::make_unique<credit::AffordabilityCappedPolicy>(
      &repayment, 0.90, 3.5));

  sim::TextTable table({"policy", "ADR <15K", "ADR >=15K", "impact gap",
                        "approve <15K", "approve >=15K", "race ADR gap"});
  for (const auto& policy : policies) {
    PolicyOutcome outcome = RunPolicy(*policy, repayment, 77);
    table.AddRow(
        {outcome.name, sim::TextTable::Cell(outcome.adr_low_income, 3),
         sim::TextTable::Cell(outcome.adr_high_income, 3),
         sim::TextTable::Cell(
             std::fabs(outcome.adr_low_income - outcome.adr_high_income), 3),
         sim::TextTable::Cell(outcome.approval_low, 3),
         sim::TextTable::Cell(outcome.approval_high, 3),
         sim::TextTable::Cell(stats::CoincidenceGap(outcome.race_adr), 3)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "reading:\n"
      " - flat-limit treats everyone 'equally' but low-income borrowers\n"
      "   default on the oversized loan (ADR ~0.8 vs ~0.003): massive\n"
      "   impact gap — the Equal Credit Opportunity Act story.\n"
      " - the scorecard closes the impact gap by *excluding* the <15K\n"
      "   class outright (approval 0), trading impact for access.\n"
      " - affordability-capped differentiates the loan size instead:\n"
      "   smaller loans people can carry, low default rates for every\n"
      "   class that can carry any loan at all — the paper's\n"
      "   'differentiated credit limits ... lead to a positive and\n"
      "   equal impact'.\n");
  return 0;
}
