#!/usr/bin/env python3
"""Compares a fresh bench_perf JSON against the committed snapshot.

Usage: check_bench_regression.py FRESH_JSON SNAPSHOT_JSON
           [--accept-digest-bump NEW_SNAPSHOT_JSON]

Checks, in order of severity:

1. Determinism digests (HARD FAIL, exit 1). The multi-trial and
   within-trial sections carry an FNV-1a digest over every simulated
   series; the digest is a pure function of the workload parameters
   (num_trials, num_users) and the simulation code, and is independent of
   thread count and machine. A mismatch at equal parameters means the
   simulation's numerical behaviour changed — which must be a deliberate,
   snapshot-refreshing change, never an accident. Sections whose
   parameters differ from the snapshot's are skipped (the digest is not
   comparable), as are sections absent from either run — so a fresh run
   that skips legacy sections (e.g. within_users 0 / fit_rows 0) or an
   old snapshot predating a section (market_scaling arrived in PR 4)
   still checks cleanly. The digest can differ across libm/compiler versions
   (last-ULP changes in exp/erfc), so when a toolchain bump — not a code
   change — moves it, set EQIMPACT_BENCH_DIGEST_WARN_ONLY=1 to downgrade
   the mismatch to a warning for the commit that refreshes the snapshot.

   A *deliberate* numerical change (e.g. PR 6's switch of the normal-CDF
   reference from libm erfc to the pinned rational) is declared instead
   of suppressed: the commit's new snapshot carries a "digest_bump"
   block —

       "digest_bump": {
         "reason": "...why the numbers moved...",
         "sections": {"multi_trial_scaling": {"from": "...", "to": "..."},
                      ...}
       }

   — and the check runs with --accept-digest-bump NEW_SNAPSHOT_JSON. A
   mismatched section is then accepted if and only if the block names
   that exact (from, to) digest pair: `from` must equal the old
   snapshot's digest and `to` the fresh run's. Anything else — an
   undeclared section, a drive-by third digest — still hard-fails, so
   the bump accepts one recorded transition, not arbitrary drift.

2. Intra-run determinism flags (HARD FAIL, exit 1): the fresh run must
   report deterministic_across_thread_counts == true in every section,
   and the simd_scaling section (PR 5) must report
   vector_matches_scalar == true — a vector kernel that is not
   bit-for-bit its scalar reference breaks the layer's contract. The
   simd_scaling digest is checked like the other sections' (it pins the
   kernels' numerical behaviour; it is backend-independent by the same
   contract, so scalar-forced, SSE2 and AVX2 builds must all produce
   it). The PR 6 sections add three more flags of the same severity:
   phi_scaling.vector_matches_scalar, phi_scaling.max_ulp_vs_libm <=
   phi_scaling.ulp_bound (the pinned CDF's documented accuracy
   contract), and fold_scaling.dense_matches_hashed (the dense refit
   fold must leave the fitted scorecards bitwise-unchanged). The PR 7
   shard_scaling section adds three more:
   sharded_matches_unsharded, deterministic_across_shard_counts and
   checkpoint_resume_matches — sharding and checkpoint/resume regroup
   execution and must never move a bit. The PR 8 serving_scaling
   section adds served_digest_matches_cli: every job served over the
   experiment service must carry the same digest AND byte-identical
   payload as a direct engine run + CLI render of the same spec — the
   serving layer is transport, never arithmetic. PR 10 extends the
   same section with a connection_sweep array (1/4/16/64 pipelined
   connections on both the threads and epoll transports): every sweep
   point's payloads_match flag — and the folded
   connection_sweep_payloads_match — is checked at the same severity,
   because each point byte-compares every served payload against the
   pre-sweep baseline. Snapshots predating the sweep simply lack the
   keys and are skipped. The PR 9
   markov_scaling section adds three more: sparse_matches_dense (the
   sparse Ulam operator must equal the dense oracle entry for entry and
   propagate bit for bit), deterministic_across_thread_counts (build,
   matvec and stationary digests bitwise-stable at 1/2/8 threads), and
   stationary_converged; its section digest folds the per-size
   invariant-measure digests and is checked like every other
   section's. Additionally, whenever a run
   (fresh or snapshot) carries both within_trial_scaling and
   shard_scaling at the same workload parameters, their digests must
   agree with each other *within that file* (HARD FAIL): the sharded
   engine reproducing the unsharded sweep is the tentpole contract, and
   this cross-check catches a snapshot refreshed with mismatched halves.
   Older snapshots without a shard_scaling section are fine — the
   section is skipped like any other absent section.

3. Throughput (WARN only, exit 0): wall-clock rates are machine- and
   load-dependent, so regressions beyond the threshold (default 25%) are
   reported as warnings, not failures. Micro benchmarks and the scaling
   sections' sequential rates are compared by name; the scaling
   sections' multi-thread sweep points are compared per thread count,
   except when either run reports hardware_concurrency == 1 — a 1-core
   machine oversubscribes every multi-thread point (the committed
   snapshots are from a 1-core container), so its sweep timings carry no
   signal and the thread-sweep comparison is skipped with a note.

A missing or unparsable input file is a usage/environment error, not a
bench regression: the check exits 1 with a one-line message naming the
file, instead of a traceback — so CI logs say "baseline snapshot
BENCH_perf_prN.json not found" rather than a stack dump.

When $GITHUB_STEP_SUMMARY is set (as it is inside GitHub Actions), the
check also appends a markdown trend summary there: per-section digest
status and the headline throughput deltas vs the snapshot.
"""

import json
import os
import sys

REGRESSION_THRESHOLD = 0.25  # Warn when a rate drops by more than this.
DIGEST_WARN_ONLY = os.environ.get("EQIMPACT_BENCH_DIGEST_WARN_ONLY") == "1"


def fail(message):
    print(f"FAIL: {message}")
    return 1


def load_json_or_die(path, label):
    """Reads one input file; a missing or unparsable file exits 1 with a
    one-line message instead of a traceback."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        print(f"FAIL: {label} '{path}' cannot be read: {e.strerror or e}")
        sys.exit(1)
    except json.JSONDecodeError as e:
        print(
            f"FAIL: {label} '{path}' is not valid JSON "
            f"(line {e.lineno}, column {e.colno}: {e.msg})"
        )
        sys.exit(1)


def sequential_rate(section, key):
    for run in section.get("runs", []):
        if run.get("num_threads") == 1:
            return run.get(key)
    return None


def largest_cells_rate(section, key):
    """The markov_scaling rate at the largest discretisation in the run."""
    best = None
    for run in section.get("runs", []):
        if best is None or run.get("num_cells", 0) > best.get("num_cells", 0):
            best = run
    return best.get(key) if best else None


def compare_digests(fresh, snapshot, section, params, accepted_bumps=None):
    """Returns (errors, notes) for one scaling section."""
    f = fresh.get(section)
    s = snapshot.get(section)
    if f is None or s is None:
        return 0, [f"{section}: absent from fresh or snapshot, skipped"]
    for param in params:
        if f.get(param) != s.get(param):
            return 0, [
                f"{section}: {param} differs "
                f"({f.get(param)} vs {s.get(param)}), digest not comparable"
            ]
    if f.get("digest") != s.get("digest"):
        bump = (accepted_bumps or {}).get(section)
        if (
            bump is not None
            and bump.get("from") == s.get("digest")
            and bump.get("to") == f.get("digest")
        ):
            return 0, [
                f"{section}: digest moved {s.get('digest')} -> "
                f"{f.get('digest')}, accepted by the declared digest bump"
            ]
        message = (
            f"{section}: determinism digest mismatch at equal "
            f"parameters ({f.get('digest')} vs snapshot "
            f"{s.get('digest')}) — the simulation changed; if "
            "intentional, refresh the BENCH snapshot in the same commit "
            "(toolchain-only drift: re-run with "
            "EQIMPACT_BENCH_DIGEST_WARN_ONLY=1)"
        )
        if DIGEST_WARN_ONLY:
            return 0, [f"WARN-ONLY {message}"]
        return fail(message), []
    return 0, [f"{section}: digest OK ({f.get('digest')})"]


def check_rate(name, fresh_rate, snapshot_rate, warnings):
    if not fresh_rate or not snapshot_rate:
        return
    ratio = fresh_rate / snapshot_rate
    if ratio < 1.0 - REGRESSION_THRESHOLD:
        warnings.append(
            f"{name}: {fresh_rate:.1f} vs snapshot {snapshot_rate:.1f} "
            f"({(1.0 - ratio) * 100.0:.0f}% slower)"
        )


def headline_rates(fresh, snapshot):
    """(name, fresh_rate, snapshot_rate) triples for the trend summary."""
    rows = []
    for name, section, key in (
        ("multi_trial trials/sec (1 thread)", "multi_trial_scaling",
         "trials_per_sec"),
        ("within_trial user-years/sec (1 thread)", "within_trial_scaling",
         "user_years_per_sec"),
        ("fit fits/sec (1 thread)", "fit_scaling", "fits_per_sec"),
        ("market trials/sec (1 thread)", "market_scaling",
         "trials_per_sec"),
    ):
        rows.append((
            name,
            sequential_rate(fresh.get(section, {}), key),
            sequential_rate(snapshot.get(section, {}), key),
        ))
    for name, section, key in (
        ("phi vector elems/sec", "phi_scaling", "vector_elems_per_sec"),
        ("fold dense user-years/sec", "fold_scaling",
         "dense_user_years_per_sec"),
        ("serving jobs/sec", "serving_scaling", "jobs_per_sec"),
        ("serving p50 latency ms", "serving_scaling", "p50_latency_ms"),
        ("serving p95 latency ms", "serving_scaling", "p95_latency_ms"),
    ):
        rows.append((
            name,
            fresh.get(section, {}).get(key),
            snapshot.get(section, {}).get(key),
        ))
    rows.append((
        "markov matvec entries/sec (largest cells)",
        largest_cells_rate(
            fresh.get("markov_scaling", {}), "matvec_entries_per_sec"
        ),
        largest_cells_rate(
            snapshot.get("markov_scaling", {}), "matvec_entries_per_sec"
        ),
    ))
    return rows


def write_step_summary(fresh, snapshot, digest_sections, errors, warnings):
    """Appends a markdown trend block to $GITHUB_STEP_SUMMARY, if set."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = ["## Bench trend vs snapshot", ""]
    if errors:
        lines.append(
            f"**{errors} hard determinism failure(s)** — see the job log."
        )
    else:
        lines.append(
            f"Passed with {len(warnings)} throughput warning(s) "
            f"(warn threshold {REGRESSION_THRESHOLD:.0%})."
        )
    lines += [
        "",
        "### Determinism digests",
        "",
        "| Section | Fresh | Snapshot | Status |",
        "| --- | --- | --- | --- |",
    ]
    for section, params in digest_sections:
        f = fresh.get(section)
        s = snapshot.get(section)
        if f is None or s is None:
            status = "skipped (absent)"
        elif any(f.get(p) != s.get(p) for p in params):
            status = "skipped (parameters differ)"
        elif f.get("digest") == s.get("digest"):
            status = "match"
        else:
            status = "**MISMATCH**"
        fresh_digest = f.get("digest", "—") if f else "—"
        snapshot_digest = s.get("digest", "—") if s else "—"
        lines.append(
            f"| {section} | `{fresh_digest}` | `{snapshot_digest}` "
            f"| {status} |"
        )
    lines += [
        "",
        "### Throughput deltas",
        "",
        "| Metric | Fresh | Snapshot | Delta |",
        "| --- | ---: | ---: | ---: |",
    ]
    for name, fresh_rate, snapshot_rate in headline_rates(fresh, snapshot):
        if not fresh_rate or not snapshot_rate:
            continue
        delta = (fresh_rate / snapshot_rate - 1.0) * 100.0
        lines.append(
            f"| {name} | {fresh_rate:.1f} | {snapshot_rate:.1f} "
            f"| {delta:+.1f}% |"
        )
    if warnings:
        lines += ["", "### Regression warnings", ""]
        lines += [f"- {warning}" for warning in warnings]
    with open(path, "a") as out:
        out.write("\n".join(lines) + "\n")


def check_thread_sweep(section_name, fresh, snapshot, rate_key, warnings):
    """Compares a scaling section's rates per matching thread count."""
    snapshot_runs = {
        run.get("num_threads"): run.get(rate_key)
        for run in snapshot.get(section_name, {}).get("runs", [])
    }
    for run in fresh.get(section_name, {}).get("runs", []):
        threads = run.get("num_threads")
        if threads == 1:
            continue  # Sequential rates are compared separately.
        check_rate(
            f"{section_name} {rate_key} ({threads} threads)",
            run.get(rate_key),
            snapshot_runs.get(threads),
            warnings,
        )


def main(argv):
    args = list(argv[1:])
    bump_path = None
    if "--accept-digest-bump" in args:
        at = args.index("--accept-digest-bump")
        if at + 1 >= len(args):
            print(__doc__)
            return 2
        bump_path = args[at + 1]
        del args[at : at + 2]
    if len(args) != 2:
        print(__doc__)
        return 2
    fresh = load_json_or_die(args[0], "fresh bench run")
    snapshot = load_json_or_die(args[1], "baseline snapshot")

    errors = 0
    notes = []

    # The declared one-transition digest acceptances, if any (see the
    # module docstring): read from the *new* snapshot's digest_bump
    # block, never from the run being checked.
    accepted_bumps = None
    if bump_path is not None:
        bump_block = load_json_or_die(
            bump_path, "--accept-digest-bump snapshot"
        ).get("digest_bump")
        if not bump_block:
            notes.append(
                f"--accept-digest-bump: {bump_path} declares no "
                "digest_bump block; digests must match exactly"
            )
        else:
            accepted_bumps = bump_block.get("sections", {})
            notes.append(
                "digest bump declared for "
                f"{sorted(accepted_bumps)} — reason: "
                f"{bump_block.get('reason', '(none given)')}"
            )

    # 1. Digests at matching workload parameters.
    digest_sections = [
        ("multi_trial_scaling", ["num_trials", "num_users"]),
        ("within_trial_scaling", ["num_users", "num_years"]),
        ("fit_scaling", ["num_rows"]),
        ("market_scaling", ["num_trials", "num_workers", "num_rounds"]),
        ("simd_scaling", ["num_values"]),
        ("phi_scaling", ["num_values"]),
        ("fold_scaling", ["num_users", "num_user_years"]),
        ("shard_scaling", ["num_users", "num_years"]),
        ("serving_scaling", ["num_jobs", "num_distinct"]),
        ("markov_scaling", ["max_cells", "num_maps"]),
    ]
    for section, params in digest_sections:
        e, n = compare_digests(
            fresh, snapshot, section, params, accepted_bumps
        )
        errors += e
        notes += n

    # 1b. Sharded-vs-unsharded cross-check within each file: a run that
    # carries both sections at the same workload must report one digest.
    for label, run in (("fresh", fresh), ("snapshot", snapshot)):
        within = run.get("within_trial_scaling")
        shard = run.get("shard_scaling")
        if within is None or shard is None:
            continue
        if any(
            within.get(param) != shard.get(param)
            for param in ("num_users", "num_years")
        ):
            continue
        if within.get("digest") != shard.get("digest"):
            errors += fail(
                f"{label}: shard_scaling digest ({shard.get('digest')}) "
                "differs from within_trial_scaling "
                f"({within.get('digest')}) at equal parameters — the "
                "sharded engine is not reproducing the unsharded sweep"
            )

    # 2. The fresh run must itself be thread-count deterministic.
    for section in (
        "multi_trial_scaling",
        "within_trial_scaling",
        "fit_scaling",
        "market_scaling",
        "markov_scaling",
    ):
        if section in fresh and not fresh[section].get(
            "deterministic_across_thread_counts", True
        ):
            errors += fail(f"{section}: fresh run is not deterministic")
    if "simd_scaling" in fresh and not fresh["simd_scaling"].get(
        "vector_matches_scalar", True
    ):
        errors += fail(
            "simd_scaling: a vector kernel is not bitwise-equal to its "
            "scalar reference"
        )
    if "phi_scaling" in fresh:
        phi = fresh["phi_scaling"]
        if not phi.get("vector_matches_scalar", True):
            errors += fail(
                "phi_scaling: the vector normal CDF is not bitwise-equal "
                "to the pinned scalar reference"
            )
        max_ulp = phi.get("max_ulp_vs_libm")
        bound = phi.get("ulp_bound")
        if (
            max_ulp is not None
            and bound is not None
            and max_ulp > bound
        ):
            errors += fail(
                f"phi_scaling: max ulp vs libm ({max_ulp}) exceeds the "
                f"documented bound ({bound})"
            )
    if "fold_scaling" in fresh and not fresh["fold_scaling"].get(
        "dense_matches_hashed", True
    ):
        errors += fail(
            "fold_scaling: the dense refit fold does not reproduce the "
            "hashed fold's results bitwise"
        )
    if "shard_scaling" in fresh:
        shard = fresh["shard_scaling"]
        for flag, meaning in (
            (
                "sharded_matches_unsharded",
                "a sharded run's digest differs from the unsharded run's",
            ),
            (
                "deterministic_across_shard_counts",
                "the digest moved across shard counts",
            ),
            (
                "checkpoint_resume_matches",
                "a trial resumed from a mid-run checkpoint did not "
                "reproduce the uninterrupted digest",
            ),
        ):
            if not shard.get(flag, True):
                errors += fail(f"shard_scaling: {meaning}")
    if "serving_scaling" in fresh:
        serving = fresh["serving_scaling"]
        if not serving.get("served_digest_matches_cli", True):
            errors += fail(
                "serving_scaling: a served result's digest or payload "
                "differs from the direct engine run + CLI render of the "
                "same spec — the serving layer changed the numbers"
            )
        # PR 10 connection sweep: each point byte-compares every payload
        # served over N pipelined connections against the pre-sweep
        # baseline. Absent in older runs (pre-sweep snapshots) — skipped
        # like any other absent section.
        if not serving.get("connection_sweep_payloads_match", True):
            errors += fail(
                "serving_scaling: connection_sweep_payloads_match is "
                "false — some payload served during the connection sweep "
                "differs from the baseline render of the same spec"
            )
        for point in serving.get("connection_sweep", []):
            if not point.get("payloads_match", True):
                errors += fail(
                    "serving_scaling connection_sweep: payload mismatch "
                    f"at transport={point.get('transport')} "
                    f"connections={point.get('connections')} — the "
                    "transport corrupted or dropped a served payload"
                )
    if "markov_scaling" in fresh:
        markov = fresh["markov_scaling"]
        for flag, meaning in (
            (
                "sparse_matches_dense",
                "the sparse Ulam operator diverged from the dense oracle "
                "(matrix entries, bitwise Propagate, or the stationary "
                "measure)",
            ),
            (
                "stationary_converged",
                "a stationary solve failed to converge",
            ),
        ):
            if not markov.get(flag, True):
                errors += fail(f"markov_scaling: {meaning}")

    # 3. Throughput trend (warnings only).
    warnings = []
    check_rate(
        "multi_trial trials/sec (1 thread)",
        sequential_rate(fresh.get("multi_trial_scaling", {}), "trials_per_sec"),
        sequential_rate(
            snapshot.get("multi_trial_scaling", {}), "trials_per_sec"
        ),
        warnings,
    )
    check_rate(
        "within_trial user-years/sec (1 thread)",
        sequential_rate(
            fresh.get("within_trial_scaling", {}), "user_years_per_sec"
        ),
        sequential_rate(
            snapshot.get("within_trial_scaling", {}), "user_years_per_sec"
        ),
        warnings,
    )
    check_rate(
        "fit_scaling fits/sec (1 thread)",
        sequential_rate(fresh.get("fit_scaling", {}), "fits_per_sec"),
        sequential_rate(snapshot.get("fit_scaling", {}), "fits_per_sec"),
        warnings,
    )
    check_rate(
        "market_scaling trials/sec (1 thread)",
        sequential_rate(fresh.get("market_scaling", {}), "trials_per_sec"),
        sequential_rate(snapshot.get("market_scaling", {}), "trials_per_sec"),
        warnings,
    )

    # Thread-sweep points: meaningless when either side ran on one core
    # (every multi-thread point is oversubscribed there), so suppressed.
    if (
        fresh.get("hardware_concurrency") == 1
        or snapshot.get("hardware_concurrency") == 1
    ):
        notes.append(
            "thread-sweep comparison skipped: hardware_concurrency == 1 "
            f"(fresh {fresh.get('hardware_concurrency')}, snapshot "
            f"{snapshot.get('hardware_concurrency')})"
        )
    else:
        check_thread_sweep(
            "multi_trial_scaling", fresh, snapshot, "trials_per_sec", warnings
        )
        check_thread_sweep(
            "within_trial_scaling",
            fresh,
            snapshot,
            "user_years_per_sec",
            warnings,
        )
        check_thread_sweep(
            "fit_scaling", fresh, snapshot, "fits_per_sec", warnings
        )
        check_thread_sweep(
            "market_scaling", fresh, snapshot, "trials_per_sec", warnings
        )
    snapshot_micro = {
        m["name"]: m.get("items_per_sec")
        for m in snapshot.get("micro", [])
    }
    for micro in fresh.get("micro", []):
        check_rate(
            f"micro {micro['name']}",
            micro.get("items_per_sec"),
            snapshot_micro.get(micro["name"]),
            warnings,
        )
    # simd_scaling kernel rates, by name (warn only, like every rate; the
    # scalar and vector paths are compared separately so a dispatch
    # regression shows up even when the scalar reference is unchanged).
    snapshot_kernels = {
        k["name"]: k
        for k in snapshot.get("simd_scaling", {}).get("kernels", [])
    }
    for kernel in fresh.get("simd_scaling", {}).get("kernels", []):
        reference = snapshot_kernels.get(kernel["name"], {})
        for rate_key in ("scalar_elems_per_sec", "simd_elems_per_sec"):
            check_rate(
                f"simd {kernel['name']} {rate_key}",
                kernel.get(rate_key),
                reference.get(rate_key),
                warnings,
            )
    for rate_key in (
        "scalar_elems_per_sec",
        "vector_elems_per_sec",
        "libm_elems_per_sec",
    ):
        check_rate(
            f"phi_scaling {rate_key}",
            fresh.get("phi_scaling", {}).get(rate_key),
            snapshot.get("phi_scaling", {}).get(rate_key),
            warnings,
        )
    for rate_key in (
        "hashed_user_years_per_sec",
        "dense_user_years_per_sec",
    ):
        check_rate(
            f"fold_scaling {rate_key}",
            fresh.get("fold_scaling", {}).get(rate_key),
            snapshot.get("fold_scaling", {}).get(rate_key),
            warnings,
        )
    # shard_scaling rates, per shard count (the section pins one thread,
    # so these stay meaningful on 1-core machines).
    snapshot_shards = {
        run.get("num_shards"): run.get("user_years_per_sec")
        for run in snapshot.get("shard_scaling", {}).get("runs", [])
    }
    for run in fresh.get("shard_scaling", {}).get("runs", []):
        check_rate(
            f"shard_scaling user-years/sec ({run.get('num_shards')} shards)",
            run.get("user_years_per_sec"),
            snapshot_shards.get(run.get("num_shards")),
            warnings,
        )
    # Serving throughput: end-to-end jobs/sec through the experiment
    # service (admission + scheduling + render + transport), warn-only
    # like every other rate.
    check_rate(
        "serving_scaling jobs/sec",
        fresh.get("serving_scaling", {}).get("jobs_per_sec"),
        snapshot.get("serving_scaling", {}).get("jobs_per_sec"),
        warnings,
    )
    # Connection-sweep rates, per (transport, connection count). Warn
    # only, like every rate; an older snapshot without the sweep has no
    # reference points and contributes nothing.
    snapshot_sweep = {
        (point.get("transport"), point.get("connections")):
            point.get("jobs_per_sec")
        for point in snapshot.get("serving_scaling", {}).get(
            "connection_sweep", []
        )
    }
    for point in fresh.get("serving_scaling", {}).get(
        "connection_sweep", []
    ):
        key = (point.get("transport"), point.get("connections"))
        check_rate(
            f"serving_scaling connection_sweep jobs/sec "
            f"({key[0]}, {key[1]} conns)",
            point.get("jobs_per_sec"),
            snapshot_sweep.get(key),
            warnings,
        )
    # markov_scaling rates, per cell count (sparse matvec and build are
    # single-number-per-size; compared by num_cells, warn-only).
    snapshot_markov = {
        run.get("num_cells"): run
        for run in snapshot.get("markov_scaling", {}).get("runs", [])
    }
    for run in fresh.get("markov_scaling", {}).get("runs", []):
        reference = snapshot_markov.get(run.get("num_cells"), {})
        check_rate(
            f"markov_scaling matvec entries/sec ({run.get('num_cells')} "
            "cells)",
            run.get("matvec_entries_per_sec"),
            reference.get("matvec_entries_per_sec"),
            warnings,
        )

    for note in notes:
        print(f"note: {note}")
    for warning in warnings:
        print(f"WARNING (>{REGRESSION_THRESHOLD:.0%} regression): {warning}")
    write_step_summary(fresh, snapshot, digest_sections, errors, warnings)
    if errors:
        return 1
    print(
        f"bench trend check passed "
        f"({len(warnings)} throughput warning(s), 0 digest errors)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
